"""Process-backend adjudication for the stream engine.

The engine's feed phase is cheap numpy; the expensive part of an
advance is adjudicating the windows the watermark just closed (control
queries, scope descent).  Under the ``process`` backend those are
shipped here, to a pool whose workers hold the same worker-resident
world the batch executor uses (:func:`repro.exec.workers.
resident_world`): only configs, the windows' accumulated alert
episodes, and the country's RNG state cross the process boundary.

Curation consumes its per-country RNG substream strictly in candidate
order, so the engine ships the generator's exact bit-state out and
takes the advanced state back — the draws land exactly where a serial
run would land them, which is what keeps the process backend
byte-identical.  Stream workers do not collect spans or heartbeats
(the engine's telemetry reports watermark progress from the parent
side), but when the parent session records provenance they build a
worker-local recorder, thread the country's RNG-draw cursor through
adjudication, and ship the minted lineage capsules home alongside the
advanced cursor — the provenance twin of
:meth:`repro.obs.trace.Tracer.adopt`.
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Optional, Sequence, Tuple

from repro.ioda.curation import CurationConfig, CurationPipeline, \
    WindowAdjudication
from repro.ioda.platform import PlatformConfig
from repro.obs.provenance import DrawCursor
from repro.obs.runtime import Observability, activate
from repro.rng import substream
from repro.signals.alerts import AlertEpisode
from repro.signals.kinds import SignalKind
from repro.timeutils.timestamps import TimeRange
from repro.world.scenario import ScenarioConfig

__all__ = ["adjudicate_country_subprocess"]

#: One country's due work: (window, its accumulated per-signal episodes).
_WindowWork = Tuple[TimeRange, Dict[SignalKind, List[AlertEpisode]]]


def adjudicate_country_subprocess(
        scenario_config: ScenarioConfig,
        platform_config: PlatformConfig,
        curation_config: CurationConfig,
        period: TimeRange,
        iso2: str,
        work: Sequence[_WindowWork],
        rng_state: dict,
        next_record_id: int,
        signal_cache_size: Optional[int] = None,
        provenance: bool = False,
        draw_index: int = 0,
) -> Tuple[List[WindowAdjudication], dict, int, List[dict], int]:
    """Adjudicate one country's closed windows over the resident world.

    Module-level so it pickles by reference.  Returns the adjudications
    in window order plus the advanced RNG state, next record id, any
    lineage capsules captured (empty unless ``provenance``), and the
    advanced RNG-draw cursor index, for the parent to fold back into
    its country state.
    """
    from repro.exec.workers import resident_world

    scenario, platform = resident_world(
        scenario_config, platform_config, signal_cache_size)
    pipeline = CurationPipeline(platform, curation_config)
    rng = substream(scenario.seed, "curation", iso2)
    rng.bit_generator.state = rng_state
    record_ids = itertools.count(next_record_id)
    draws = DrawCursor(draw_index)
    if provenance:
        local = Observability()
        local.enable_provenance()
        with activate(local):
            adjudications = [
                pipeline.adjudicate_window(iso2, window, period, episodes,
                                           rng, record_ids, draws=draws)
                for window, episodes in work]
        capsules = list(local.provenance.capsules)
    else:
        adjudications = [
            pipeline.adjudicate_window(iso2, window, period, episodes, rng,
                                       record_ids)
            for window, episodes in work]
        capsules = []
    return (adjudications, rng.bit_generator.state, next(record_ids),
            capsules, draws.index)
