"""repro.stream — incremental ingestion and detection.

The batch pipeline materializes every signal for the whole study period
before curating.  This package is the always-on counterpart: signal
bins are **pushed** bin by bin, trailing-median detectors keep O(window)
rolling state (:mod:`repro.stream.detect`, bitwise-equal to the
columnar batch path), and curation emits event lifecycle records
(``open``/``update``/``close``) at a configurable **watermark** instead
of one terminal batch (:mod:`repro.stream.engine`).

Layering (the client/models/processor/scheduler split):

- :mod:`repro.stream.models`  — the wire types: :class:`SignalBin`,
  :class:`BinBatch`, :class:`StreamEvent`.
- :mod:`repro.stream.detect`  — :class:`StreamingAlertDetector` and
  :class:`StreamingEpisodeGrouper`, the incremental detection core the
  batch dashboard now composes over.
- :mod:`repro.stream.source`  — :class:`ScenarioBinSource`, the
  fault-injectable (``repro.resilience``) replay source that turns the
  synthetic platform into a bin feed.
- :mod:`repro.stream.engine`  — :class:`StreamEngine`, per-window
  buffering, watermark advancement, and lifecycle-event curation.
- :mod:`repro.stream.session` — :class:`StreamSession`, the public
  surface behind :func:`repro.api.stream`.

Exports resolve lazily so that :mod:`repro.ioda.dashboard` can import
the detection core without dragging in the session layer (which itself
imports :mod:`repro.ioda`).
"""

from __future__ import annotations

from typing import Any

__all__ = [
    "BinBatch",
    "ScenarioBinSource",
    "SignalBin",
    "StreamEngine",
    "StreamEvent",
    "StreamSession",
    "StreamingAlertDetector",
    "StreamingEpisodeGrouper",
    "stream_episodes",
]

_HOMES = {
    "SignalBin": "repro.stream.models",
    "BinBatch": "repro.stream.models",
    "StreamEvent": "repro.stream.models",
    "StreamingAlertDetector": "repro.stream.detect",
    "StreamingEpisodeGrouper": "repro.stream.detect",
    "stream_episodes": "repro.stream.detect",
    "ScenarioBinSource": "repro.stream.source",
    "StreamEngine": "repro.stream.engine",
    "StreamSession": "repro.stream.session",
}


def __getattr__(name: str) -> Any:
    home = _HOMES.get(name)
    if home is None:
        raise AttributeError(f"module 'repro.stream' has no attribute "
                             f"{name!r}")
    import importlib

    return getattr(importlib.import_module(home), name)
