"""Figure 14: start hour-of-day in local time."""

from benchmarks.conftest import print_banner
from repro.analysis.temporal import analyze_temporal


def test_bench_fig14_hour_local(benchmark, pipeline_result):
    analysis = benchmark(analyze_temporal, pipeline_result.merged)
    shutdowns, outages = analysis.shutdowns, analysis.outages
    rows = [
        f"start 00:00-06:00 local: shutdowns "
        f"{shutdowns.frac_start_00_to_06_local:.1%} | outages "
        f"{outages.frac_start_00_to_06_local:.1%}",
    ]
    for hour in (0, 4, 8, 12, 16, 20):
        rows.append(
            f"  CDF(hour <= {hour:02d}): shutdowns "
            f"{shutdowns.hour_local(hour):.2f} | outages "
            f"{outages.hour_local(hour):.2f}")
    print_banner(
        "Figure 14 — start hour of day (local time)",
        "72.1% of shutdowns start 00:00-06:00 (midnight curfews, "
        "pre-dawn exam blocks); outages near uniform",
        rows)
    assert shutdowns.frac_start_00_to_06_local > 0.5
    assert outages.frac_start_00_to_06_local < 0.45
