"""Figure 12: start minute-of-hour in UTC."""

from benchmarks.conftest import print_banner
from repro.analysis.temporal import analyze_temporal


def test_bench_fig12_minute_utc(benchmark, pipeline_result):
    analysis = benchmark(analyze_temporal, pipeline_result.merged)
    shutdowns, outages = analysis.shutdowns, analysis.outages
    rows = [
        f"start on the hour (UTC): shutdowns "
        f"{shutdowns.frac_on_hour_utc:.1%} | outages "
        f"{outages.frac_on_hour_utc:.1%}",
        f"start on hour or half hour (UTC): shutdowns "
        f"{shutdowns.frac_on_hour_or_half_utc:.1%} | outages "
        f"{outages.frac_on_hour_or_half_utc:.1%}",
    ]
    for minute in range(0, 60, 10):
        rows.append(
            f"  CDF(minute <= {minute:02d}): shutdowns "
            f"{shutdowns.minute_utc(minute):.2f} | outages "
            f"{outages.minute_utc(minute):.2f}")
    print_banner(
        "Figure 12 — start minute of hour (UTC)",
        "87.4% of shutdowns on the hour or half hour vs 39.6% of "
        "outages; outages near the uniform diagonal",
        rows)
    assert shutdowns.frac_on_hour_or_half_utc > 0.6
    assert outages.frac_on_hour_or_half_utc < 0.35
