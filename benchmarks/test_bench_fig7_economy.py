"""Figure 7: GDP per capita (PPP) and broadband access, per group."""

from benchmarks.conftest import print_banner
from repro.analysis.country_year import CountryYearGroup, \
    group_country_years
from repro.analysis.institutions import institution_distributions

YEARS = [2018, 2019, 2020, 2021]


def test_bench_fig7_economy(benchmark, pipeline_result):
    merged = pipeline_result.merged
    table = group_country_years(merged, YEARS)

    def compute():
        dists = institution_distributions(
            table, merged.registry, pipeline_result.vdem,
            pipeline_result.worldbank)
        return dists["gdp_per_capita"], dists["broadband_fraction"]

    gdp, broadband = benchmark(compute)
    print_banner(
        "Figure 7 — GDP per capita & broadband access (CDFs)",
        "Shutdown country-years are poorest and least connected; "
        "outage country-years in between; Neither richest",
        gdp.rows() + broadband.rows())
    for dist in (gdp, broadband):
        assert dist.median(CountryYearGroup.SHUTDOWNS) <= \
            dist.median(CountryYearGroup.OUTAGES) < \
            dist.median(CountryYearGroup.NEITHER)
