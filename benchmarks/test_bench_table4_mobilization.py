"""Table 4: shutdown/outage probabilities on mobilization-event days."""

from benchmarks.conftest import print_banner
from repro.analysis.mobilization import mobilization_table


def test_bench_table4_mobilization(benchmark, pipeline_result):
    def compute():
        return mobilization_table(
            pipeline_result.merged, pipeline_result.coups,
            pipeline_result.elections, pipeline_result.protests)

    table = benchmark(compute)
    rows = table.rows()
    rows.append("")
    for kind in ("election", "coup", "protest"):
        rows.append(
            f"shutdown risk ratio on {kind} days: "
            f"{table.risk_ratio(kind):.1f}x   "
            f"(outage: {table.outage_risk_ratio(kind):.1f}x)")
    print_banner(
        "Table 4 — Pr(event) on mobilization days",
        "Election x16, coup ~x300, protest x9 for shutdowns; "
        "no elevation for spontaneous outages",
        rows)
    assert table.risk_ratio("coup") > table.risk_ratio("election") > 1
    assert table.risk_ratio("protest") > 3
    for kind in ("election", "protest"):
        assert table.outage_risk_ratio(kind) < 4
    assert table.rates["coup"][1].outcomes_on_condition <= 2
