"""Figure 6: media bias and freedom of discussion (men), per group."""

from benchmarks.conftest import print_banner
from repro.analysis.country_year import CountryYearGroup, \
    group_country_years
from repro.analysis.institutions import institution_distributions

YEARS = [2018, 2019, 2020, 2021]


def test_bench_fig6_media(benchmark, pipeline_result):
    merged = pipeline_result.merged
    table = group_country_years(merged, YEARS)

    def compute():
        dists = institution_distributions(
            table, merged.registry, pipeline_result.vdem,
            pipeline_result.worldbank)
        return dists["media_bias"], dists["freedom_discussion_men"]

    media, freedom = benchmark(compute)
    print_banner(
        "Figure 6 — media bias & freedom of discussion for men (CDFs)",
        "Shutdown and outage country-years skew toward bias / less "
        "freedom; Neither clusters above the mean",
        media.rows() + freedom.rows())
    for dist in (media, freedom):
        assert dist.median(CountryYearGroup.SHUTDOWNS) < \
            dist.median(CountryYearGroup.NEITHER)
        assert dist.median(CountryYearGroup.OUTAGES) < \
            dist.median(CountryYearGroup.NEITHER)
