"""Figure 8: state-owned address-space and eyeball fractions per group."""

from benchmarks.conftest import print_banner
from repro.analysis.country_year import CountryYearGroup, \
    group_country_years
from repro.analysis.institutions import state_share_distributions

YEARS = [2018, 2019, 2020, 2021]


def test_bench_fig8_state_ownership(benchmark, pipeline_result):
    table = group_country_years(pipeline_result.merged, YEARS)

    def compute():
        return state_share_distributions(
            table, pipeline_result.state_shares)

    shares = benchmark(compute)
    addr = shares["state_owned_address_space"]
    eyeballs = shares["state_owned_eyeballs"]
    print_banner(
        "Figure 8 — state share of address space & eyeballs (CDFs)",
        "Shutdown curve clearly right-shifted; outage and neither "
        "curves indistinguishable",
        addr.rows() + eyeballs.rows())
    for dist in (addr, eyeballs):
        assert dist.median(CountryYearGroup.SHUTDOWNS) > \
            dist.median(CountryYearGroup.OUTAGES) > \
            dist.median(CountryYearGroup.NEITHER)
        gap = abs(dist.median(CountryYearGroup.OUTAGES)
                  - dist.median(CountryYearGroup.NEITHER))
        shutdown_gap = (dist.median(CountryYearGroup.SHUTDOWNS)
                        - dist.median(CountryYearGroup.NEITHER))
        assert shutdown_gap > 1.5 * gap
