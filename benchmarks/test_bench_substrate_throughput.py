"""Engineering bench: measurement-substrate throughput.

Not a paper table — this bench tracks the performance of the three
substrate simulators so regressions in the expensive inner loops (the
fleet-scale pipeline replays ~1000 observation windows through them) are
caught by the benchmark suite.
"""

import numpy as np

from repro.bgp.view import visible_slash24_series
from repro.probing.blocks import ProbedBlock
from repro.probing.scheduler import ActiveProbingRun
from repro.rng import substream
from repro.telescope.counter import unique_source_series
from repro.timeutils.timestamps import DAY, TimeRange

WINDOW = TimeRange(0, 4 * DAY)
BGP_BINS = 4 * DAY // 300
AP_ROUNDS = 4 * DAY // 600


def test_bench_throughput_bgp_fastpath(benchmark):
    sizes = [4] * 150
    up = np.ones(BGP_BINS)
    up[500:600] = 0.0

    def run():
        rng = substream(1, "bench-bgp")
        return visible_slash24_series(WINDOW, sizes, up, rng)

    series = benchmark(run)
    assert series.values[0] == sum(sizes)
    assert series.values[550] == 0


def test_bench_throughput_active_probing(benchmark):
    rng = substream(1, "bench-blocks")
    blocks = [ProbedBlock(slash24=i,
                          response_rate=float(rng.uniform(0.2, 0.9)))
              for i in range(128)]
    run_obj = ActiveProbingRun(blocks)
    up = np.ones(AP_ROUNDS)
    up[250:300] = 0.0

    def run():
        return run_obj.up_count_series(WINDOW, up,
                                       substream(2, "bench-probe"))

    series = benchmark(run)
    assert series.values[280] == 0


def test_bench_throughput_telescope(benchmark):
    up = np.ones(BGP_BINS)
    up[500:600] = 0.0

    def run():
        return unique_source_series(WINDOW, 60.0, up, 3600,
                                    substream(3, "bench-tel"))

    series = benchmark(run)
    assert series.values[:400].mean() > 20
