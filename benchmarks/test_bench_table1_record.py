"""Table 1: an example curated outage record.

The paper's Table 1 shows one row of the curated dataset (a confirmed
government-ordered shutdown in Sudan, June 2022, visible in all three
signals).  This bench curates one analogous confirmed shutdown window from
scratch — signals, alerts, adjudication, cause attribution — and prints
the resulting record in Table 1's layout.
"""

from benchmarks.conftest import print_banner
from repro.ioda.curation import CurationPipeline
from repro.signals.entities import EntityScope
from repro.timeutils.timestamps import TimeRange
from repro.world.scenario import STUDY_PERIOD


def _example_event(scenario):
    """A confirmed government-ordered national blackout."""
    from repro.world.disruptions import Cause
    return next(
        d for d in scenario.shutdowns
        if d.cause is Cause.GOVERNMENT_ORDERED
        and d.scope is EntityScope.COUNTRY
        and not d.mobile_only
        and d.span.duration >= 6 * 3600
        and STUDY_PERIOD.contains(d.span.start))


def test_bench_table1_record(benchmark, pipeline_result, platform):
    scenario = pipeline_result.scenario
    event = _example_event(scenario)
    pipeline = CurationPipeline(platform)
    window = TimeRange(
        event.span.start - pipeline.config.window_lead,
        event.span.end + pipeline.config.window_tail)

    def curate_one():
        return CurationPipeline(platform).investigate(
            event.country_iso2, window, STUDY_PERIOD)

    records = benchmark(curate_one)
    assert records, "the example shutdown must be recorded"
    record = max(records, key=lambda r: r.span.duration)
    row = record.as_row()
    rows = [f"{key}: {value}" for key, value in row.items()]
    print_banner(
        "Table 1 — example curated outage record",
        "Sudan 2022-06-30: Gov-ordered, Confirmed, BGP+AP alerts, "
        "all 3 signals visible to reviewer",
        rows)
    assert record.scope is EntityScope.COUNTRY
    assert record.is_cause_shutdown() or record.cause is None
