"""Benchmark fixtures.

The benchmark harness reproduces every table and figure of the paper.
Each bench times the *analysis computation* (the pipeline's expensive
observation stage is shared and disk-cached) and prints the reproduced
rows next to the paper's reported values, so ``pytest benchmarks/
--benchmark-only -s`` regenerates the full results table.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.core.pipeline import PipelineResult, ReproPipeline
from repro.ioda.platform import IODAPlatform
from repro.world.scenario import ScenarioConfig

REPO_ROOT = Path(__file__).resolve().parent.parent
CACHE_DIR = REPO_ROOT / ".cache"
CANONICAL_SEED = 2023


def pytest_collection_modifyitems(items) -> None:
    """Every benchmark is slow; mark them so ``-m 'not slow'`` skips all."""
    for item in items:
        item.add_marker(pytest.mark.slow)


@pytest.fixture(scope="session")
def pipeline_result() -> PipelineResult:
    pipeline = ReproPipeline(
        scenario_config=ScenarioConfig(seed=CANONICAL_SEED),
        cache_dir=CACHE_DIR)
    return pipeline.run()


@pytest.fixture(scope="session")
def platform(pipeline_result) -> IODAPlatform:
    return IODAPlatform(pipeline_result.scenario)


def print_banner(title: str, paper: str, rows) -> None:
    """Uniform result presentation for every bench."""
    print()
    print("=" * 72)
    print(f"REPRODUCTION | {title}")
    print(f"PAPER        | {paper}")
    print("-" * 72)
    for row in rows:
        print(row)
    print("=" * 72)
