"""Engineering bench: the memoized signal cache.

Not a paper table — this bench tracks the two access patterns the
:class:`repro.ioda.signalcache.SignalCache` exists for:

- **Warm repeat queries.**  A dashboard-style consumer replaying the
  same ``(entity, kind, window)`` must be served from the LRU at a
  small fraction of generation cost (the PR's acceptance bar: a warm
  query costs at most 10% of a cold one).
- **The control-group pattern.**  Curation re-pulls the same control
  countries' signals for every overlapping candidate window; with the
  cache only the first pull per key generates.
"""

import time

import numpy as np

from benchmarks.conftest import CANONICAL_SEED, print_banner
from repro.ioda.platform import IODAPlatform
from repro.signals.entities import Entity
from repro.signals.kinds import SignalKind
from repro.timeutils.timestamps import DAY, TimeRange
from repro.world.scenario import ScenarioConfig, ScenarioGenerator, \
    STUDY_PERIOD

WINDOW = TimeRange(STUDY_PERIOD.start + 30 * DAY,
                   STUDY_PERIOD.start + 34 * DAY)

#: The curation control group's shape: a handful of stable countries
#: whose signals are re-read for every candidate under investigation.
CONTROL_COUNTRIES = ("JP", "DE", "AU", "CA", "SE", "NZ", "CH", "NL")
N_CANDIDATES = 10


def _scenario():
    return ScenarioGenerator(ScenarioConfig(seed=CANONICAL_SEED)).generate()


def _time(fn, rounds):
    start = time.perf_counter()
    for _ in range(rounds):
        fn()
    return (time.perf_counter() - start) / rounds


def test_bench_signal_query_warm_vs_cold(benchmark):
    scenario = _scenario()
    cold_platform = IODAPlatform(scenario, signal_cache_size=0)
    warm_platform = IODAPlatform(scenario)
    entity = Entity.country("SY")

    def cold_query():
        return cold_platform.signal(entity, SignalKind.TELESCOPE, WINDOW)

    def warm_query():
        return warm_platform.signal(entity, SignalKind.TELESCOPE, WINDOW)

    warm_query()  # prime the cache (and build the country cache)
    cold_query()  # build the uncached platform's country cache too
    cold_mean = _time(cold_query, rounds=5)
    series = benchmark.pedantic(warm_query, rounds=50, iterations=5)
    warm_mean = benchmark.stats.stats.mean

    assert np.array_equal(series.values, cold_query().values)
    assert warm_platform.signal_cache.hits > 0
    # The acceptance bar: serving from the LRU (lookup + defensive
    # copy) must cost at most 10% of regenerating the series.
    assert warm_mean <= 0.10 * cold_mean, (warm_mean, cold_mean)
    print_banner(
        "Signal cache — warm vs cold query",
        "engineering bench (no paper analogue)",
        [f"cold generation   {cold_mean * 1e3:8.3f} ms",
         f"warm cache hit    {warm_mean * 1e6:8.3f} us",
         f"speedup           {cold_mean / warm_mean:8.1f}x"])


def test_bench_signal_cache_control_group_pattern(benchmark):
    scenario = _scenario()
    kinds = (SignalKind.BGP, SignalKind.ACTIVE_PROBING,
             SignalKind.TELESCOPE)

    def replay(platform):
        total = 0
        for _candidate in range(N_CANDIDATES):
            for iso2 in CONTROL_COUNTRIES:
                for kind in kinds:
                    series = platform.signal(Entity.country(iso2), kind,
                                             WINDOW)
                    total += len(series)
        return total

    uncached_mean = _time(lambda: replay(
        IODAPlatform(scenario, signal_cache_size=0)), rounds=1)
    cached_platform = IODAPlatform(scenario)
    total = benchmark.pedantic(lambda: replay(cached_platform),
                               rounds=1, iterations=1)
    cached_mean = benchmark.stats.stats.mean

    assert total > 0
    cache = cached_platform.signal_cache
    assert cache.misses == len(CONTROL_COUNTRIES) * len(kinds)
    assert cache.hits == (N_CANDIDATES - 1) * cache.misses
    assert cached_mean <= 0.5 * uncached_mean, (cached_mean, uncached_mean)
    print_banner(
        "Signal cache — curation control-group pattern",
        "engineering bench (no paper analogue)",
        [f"queries           {N_CANDIDATES * len(CONTROL_COUNTRIES) * len(kinds):8d}",
         f"uncached replay   {uncached_mean:8.3f} s",
         f"cached replay     {cached_mean:8.3f} s",
         f"speedup           {uncached_mean / cached_mean:8.1f}x",
         f"hits/misses       {cache.hits}/{cache.misses}"])
