"""Ablation: per-signal alert thresholds (§3.1.1).

IODA alerts when a signal drops below 99% (BGP) / 80% (AP) / 25%
(Telescope) of a trailing median.  This bench sweeps the telescope
threshold over a set of real event windows and quiet windows, measuring
the detection/false-alert tradeoff that motivates the unusually low 25%.
"""

import numpy as np

from benchmarks.conftest import print_banner
from repro.ioda.detectors import DETECTOR_CONFIGS
from repro.signals.alerts import AlertDetector, DetectorConfig
from repro.signals.entities import Entity, EntityScope
from repro.signals.kinds import SignalKind
from repro.timeutils.timestamps import DAY, HOUR, TimeRange
from repro.world.scenario import STUDY_PERIOD


def _sample_events(scenario, n=12):
    events = [d for d in scenario.outages
              if d.scope is EntityScope.COUNTRY
              and d.severity >= 0.9
              and STUDY_PERIOD.contains(d.span.start)
              and d.span.duration >= HOUR]
    stride = max(1, len(events) // n)
    return events[::stride][:n]


def _quiet_windows(scenario, n=8):
    quiet_countries = ("JP", "DE", "AU", "CA", "SE", "NZ", "CH", "NL")
    windows = []
    for i, iso2 in enumerate(quiet_countries[:n]):
        start = STUDY_PERIOD.start + (30 + 90 * i) * DAY
        windows.append((iso2, TimeRange(start, start + 8 * DAY)))
    return windows


def test_bench_ablation_alert_thresholds(benchmark, pipeline_result,
                                         platform):
    scenario = pipeline_result.scenario
    events = _sample_events(scenario)
    quiet = _quiet_windows(scenario)
    base = DETECTOR_CONFIGS[SignalKind.TELESCOPE]

    def sweep():
        results = {}
        for threshold in (0.1, 0.25, 0.5, 0.8):
            detector = AlertDetector(DetectorConfig(
                threshold=threshold,
                history_seconds=base.history_seconds,
                min_history_fraction=base.min_history_fraction))
            detected = 0
            for event in events:
                window = TimeRange(event.span.start - 4 * DAY,
                                   event.span.end + 6 * HOUR)
                series = platform.signal(
                    Entity.country(event.country_iso2),
                    SignalKind.TELESCOPE, window)
                alerts = detector.detect(series)
                if any(event.span.contains(a.time) for a in alerts):
                    detected += 1
            false_bins = 0
            total_bins = 0
            for iso2, window in quiet:
                series = platform.signal(Entity.country(iso2),
                                         SignalKind.TELESCOPE, window)
                alerts = detector.detect(series)
                false_bins += len(alerts)
                total_bins += len(series)
            results[threshold] = (detected / len(events),
                                  false_bins / total_bins)
        return results

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = [f"{'Threshold':>10} {'Recall':>8} {'False-alert rate':>17}"]
    for threshold, (recall, false_rate) in sorted(results.items()):
        rows.append(f"{threshold:>10.2f} {recall:>8.2f} {false_rate:>17.4f}")
    print_banner(
        "Ablation — telescope alert threshold",
        "IODA's 25% telescope threshold trades a little recall for far "
        "fewer false alerts than BGP/AP-style thresholds would produce "
        "on this high-variance signal",
        rows)
    assert results[0.25][0] >= 0.7
    assert results[0.8][1] > 5 * max(results[0.25][1], 1e-6)
