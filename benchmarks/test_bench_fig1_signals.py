"""Figure 1: IODA's three-signal view of one outage.

Regenerates the three signal series around one national shutdown and
prints a compact text rendering: per-signal baseline, in-event level, and
the drop/recovery bins — the information Figure 1's screenshot conveys.
"""

import numpy as np

from benchmarks.conftest import print_banner
from repro.signals.entities import Entity, EntityScope
from repro.signals.kinds import SignalKind
from repro.timeutils.timestamps import DAY, HOUR, TimeRange, format_utc
from repro.world.scenario import STUDY_PERIOD


def _example_event(scenario):
    from repro.world.disruptions import Cause
    return next(
        d for d in scenario.shutdowns
        if d.cause is Cause.GOVERNMENT_ORDERED
        and d.scope is EntityScope.COUNTRY
        and not d.mobile_only
        and d.span.duration >= 6 * 3600
        and STUDY_PERIOD.contains(d.span.start))


def test_bench_fig1_signals(benchmark, pipeline_result, platform):
    event = _example_event(pipeline_result.scenario)
    window = TimeRange(event.span.start - DAY, event.span.end + 6 * HOUR)
    entity = Entity.country(event.country_iso2)

    def generate():
        return platform.signals(entity, window)

    signals = benchmark(generate)
    rows = [f"Country: {event.country_iso2}   event: {event.span}"]
    for kind in SignalKind:
        series = signals[kind]
        pre = series.slice(TimeRange(window.start, event.span.start))
        during = series.slice(event.span)
        baseline = float(np.median(pre.values))
        low = float(during.values.min())
        rows.append(
            f"{kind.label:<15} baseline={baseline:8.1f}  "
            f"in-event min={low:8.1f}  "
            f"drop={100 * (1 - low / baseline):5.1f}%")
        drop_bin = int(np.argmax(series.values < 0.5 * baseline))
        rows.append(
            f"{'':<15} first half-baseline bin: "
            f"{format_utc(series.timestamp_of(drop_bin))}")
    print_banner(
        "Figure 1 — IODA's view of a national shutdown",
        "All three signals drop together for a government-ordered outage",
        rows)
    for kind in SignalKind:
        series = signals[kind]
        pre = series.slice(TimeRange(window.start, event.span.start))
        during = series.slice(event.span)
        assert during.values.min() < 0.5 * np.median(pre.values)
