"""Ablation: the 24-hour matching-lookback correction (§4).

The paper discovered IODA events starting before the KIO local start date
(publication-date errors, timezone slips) and widened the matching window
by 24 hours.  This bench measures what the expansion buys: the number of
matched IODA records with and without the lookback.
"""

from benchmarks.conftest import print_banner
from repro.core.matching import EventMatcher, MatchingConfig
from repro.timeutils.timestamps import DAY, HOUR


def test_bench_ablation_matching_window(benchmark, pipeline_result):
    merged = pipeline_result.merged
    registry = merged.registry
    kio = merged.kio_full_network
    records = merged.ioda_records

    def run_all():
        results = {}
        for lookback in (0, 6 * HOUR, 12 * HOUR, DAY, 2 * DAY):
            matcher = EventMatcher(
                registry, MatchingConfig(lookback=lookback))
            matches = matcher.match(kio, records)
            results[lookback] = (
                len(matcher.matched_ioda_ids(matches)),
                len(matcher.matched_kio_ids(matches)))
        return results

    results = benchmark(run_all)
    rows = [f"{'Lookback':>10} {'IODA matched':>13} {'KIO matched':>12}"]
    for lookback, (ioda_n, kio_n) in sorted(results.items()):
        rows.append(f"{lookback // 3600:>9}h {ioda_n:>13} {kio_n:>12}")
    print_banner(
        "Ablation — KIO matching lookback window",
        "Paper uses 24 h of lookback to rescue matches lost to "
        "publication-date and timezone errors in KIO start dates",
        rows)
    no_lookback = results[0][0]
    with_lookback = results[DAY][0]
    assert with_lookback >= no_lookback
    # Going far beyond 24 h buys little more.
    assert results[2 * DAY][0] - results[DAY][0] <= \
        max(2, (with_lookback - no_lookback))
