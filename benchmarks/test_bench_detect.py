"""Engineering bench: columnar alert detection vs the scalar spec.

Not a paper table — this bench tracks the tentpole of the columnar
detection core: :meth:`repro.signals.alerts.AlertDetector.detect` and
:func:`repro.signals.alerts.group_alerts` must be bitwise-identical to
their per-bin reference implementations while being far faster on the
curation workload.  That workload is a *fleet* of signals — months of
5-minute bins scanned against a 7-day trailing-median window — where
most series never alert (the running-max prefilter dismisses them
without computing a single median) and a few carry genuine drops.
"""

import time

import numpy as np

from benchmarks.conftest import print_banner
from repro.ioda.detectors import DETECTOR_CONFIGS
from repro.signals.alerts import AlertDetector, group_alerts, \
    group_alerts_scalar
from repro.signals.kinds import SignalKind
from repro.signals.series import TimeSeries
from repro.timeutils.timestamps import DAY, FIVE_MINUTES

#: One month of 5-minute bins per signal — one curation signal pull.
N_BINS = 30 * DAY // FIVE_MINUTES

#: The fleet: like a country sweep, most entities are undisturbed.
N_SERIES = 40
N_DISRUPTED = 4

#: Episodes may bridge one missing bin (the curation default).
MAX_GAP_BINS = 1


def _fleet():
    """Telescope-like series: diurnal baseline, noise, and injected
    outages on a handful of entities."""
    rng = np.random.default_rng(2023)
    t = np.arange(N_BINS)
    diurnal = 800.0 * np.sin(2 * np.pi * t / (DAY // FIVE_MINUTES))
    fleet = []
    for index in range(N_SERIES):
        values = np.round(
            4000.0 + diurnal + rng.normal(0.0, 60.0, N_BINS))
        if index < N_DISRUPTED:
            for start, length, depth in ((5200, 24, 0.95),
                                         (7600, 18, 0.99)):
                values[start:start + length] = np.round(
                    values[start:start + length] * (1.0 - depth))
        fleet.append(TimeSeries(0, FIVE_MINUTES, np.maximum(values, 0.0)))
    return fleet


def test_bench_detect_columnar_vs_scalar(benchmark):
    fleet = _fleet()
    detector = AlertDetector(DETECTOR_CONFIGS[SignalKind.TELESCOPE])

    def sweep(detect):
        return [detect(series) for series in fleet]

    scalar_start = time.perf_counter()
    scalar_alerts = sweep(detector.detect_scalar)
    scalar_mean = time.perf_counter() - scalar_start

    alerts = benchmark.pedantic(lambda: sweep(detector.detect),
                                rounds=10, iterations=1)
    columnar_mean = benchmark.stats.stats.mean

    assert alerts == scalar_alerts  # bitwise-identical, not just close
    n_alerts = sum(len(a) for a in alerts)
    assert n_alerts > 0
    assert sum(1 for a in alerts if a) == N_DISRUPTED
    # The acceptance bar: the columnar sweep must beat the per-bin
    # reference by a wide margin on the curation-shaped fleet.
    assert columnar_mean <= 0.2 * scalar_mean, (columnar_mean, scalar_mean)

    episodes = [group_alerts(a, FIVE_MINUTES, max_gap_bins=MAX_GAP_BINS)
                for a in alerts]
    assert episodes == [
        group_alerts_scalar(a, FIVE_MINUTES, max_gap_bins=MAX_GAP_BINS)
        for a in alerts]
    print_banner(
        "Columnar detection — vectorized vs scalar reference",
        "engineering bench (no paper analogue)",
        [f"series swept      {N_SERIES:8d}  ({N_BINS} bins each)",
         f"alerts raised     {n_alerts:8d}",
         f"episodes          {sum(len(e) for e in episodes):8d}",
         f"scalar sweep      {scalar_mean * 1e3:8.1f} ms",
         f"columnar sweep    {columnar_mean * 1e3:8.1f} ms",
         f"speedup           {scalar_mean / columnar_mean:8.1f}x"])
