"""Figure 11: recurrence intervals between consecutive events within a
country."""

from benchmarks.conftest import print_banner
from repro.analysis.temporal import analyze_temporal


def test_bench_fig11_recurrence(benchmark, pipeline_result):
    analysis = benchmark(analyze_temporal, pipeline_result.merged)
    shutdowns, outages = analysis.shutdowns, analysis.outages
    rows = [
        f"median interval: shutdowns "
        f"{shutdowns.intervals_days.median:.1f} d | outages "
        f"{outages.intervals_days.median:.1f} d",
        f"intervals at exactly 1/2/3/4 days: shutdowns "
        f"{shutdowns.frac_interval_1_to_4_days:.1%} | outages "
        f"{outages.frac_interval_1_to_4_days:.2%}",
        f"countries with a second event: shutdowns "
        f"{shutdowns.frac_countries_recurring:.1%} | outages "
        f"{outages.frac_countries_recurring:.1%}",
    ]
    print_banner(
        "Figure 11 — recurrence intervals",
        "Medians 1 day vs 39 days; 67.7% of shutdown intervals at "
        "exactly 1-4 days vs 0.17%; 50% of shutdown countries recur vs "
        "72.2% of outage countries",
        rows)
    assert shutdowns.intervals_days.median <= 2
    assert outages.intervals_days.median > 20
    assert shutdowns.frac_interval_1_to_4_days > 0.5
    assert outages.frac_interval_1_to_4_days < 0.02
    # The paper's surprise: outage countries recur *more* often.
    assert outages.frac_countries_recurring > \
        shutdowns.frac_countries_recurring
