"""Figure 10: CDFs of shutdown vs spontaneous-outage durations."""

from benchmarks.conftest import print_banner
from repro.analysis.temporal import analyze_temporal


def test_bench_fig10_duration(benchmark, pipeline_result):
    analysis = benchmark(analyze_temporal, pipeline_result.merged)
    shutdowns, outages = analysis.shutdowns, analysis.outages
    rows = [
        f"median duration: shutdowns {shutdowns.durations_h.median:.2f} h"
        f" | outages {outages.durations_h.median:.2f} h",
        f"30-min-multiple durations: shutdowns "
        f"{shutdowns.frac_duration_30min_multiple:.1%} | outages "
        f"{outages.frac_duration_30min_multiple:.1%}",
        f"exactly 4.5/5.5/8/10 h: shutdowns "
        f"{shutdowns.frac_duration_round_hours:.1%} | outages "
        f"{outages.frac_duration_round_hours:.1%}",
    ]
    for q in (0.1, 0.25, 0.5, 0.75, 0.9):
        rows.append(
            f"  p{int(q * 100):02d}: shutdowns "
            f"{shutdowns.durations_h.quantile(q):8.2f} h | outages "
            f"{outages.durations_h.quantile(q):8.2f} h")
    print_banner(
        "Figure 10 — event duration CDFs",
        "Medians 5.5 h vs 2 h; >55% of shutdowns at 30-min multiples vs "
        "15% of outages; 45% of shutdowns at exactly 4.5/5.5/8/10 h vs "
        "<1%",
        rows)
    assert shutdowns.durations_h.median > 2 * outages.durations_h.median
    assert shutdowns.frac_duration_30min_multiple > 0.55
    assert outages.frac_duration_30min_multiple < 0.35
    assert shutdowns.frac_duration_round_hours > 0.25
    assert outages.frac_duration_round_hours < 0.05
