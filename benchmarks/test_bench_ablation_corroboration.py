"""Ablation: the two-signal corroboration rule (§3.1.2).

The curation pipeline records an outage only when two signals show
overlapping drops (or one signal plus external corroboration).  This bench
re-runs curation over a sample of windows with a one-signal rule and
compares the volume of recorded events and their precision against ground
truth.
"""

from dataclasses import replace

from benchmarks.conftest import print_banner
from repro.ioda.curation import CurationConfig, CurationPipeline
from repro.signals.entities import EntityScope
from repro.timeutils.timestamps import HOUR, TimeRange
from repro.world.scenario import STUDY_PERIOD


def _sample_windows(scenario, pipeline, n=16):
    events = [d for d in scenario.all_disruptions()
              if d.scope is EntityScope.COUNTRY
              and STUDY_PERIOD.contains(d.span.start)]
    stride = max(1, len(events) // n)
    sample = events[::stride][:n]
    return [
        (d.country_iso2,
         TimeRange(d.span.start - pipeline.config.window_lead,
                   d.span.end + pipeline.config.window_tail))
        for d in sample]


def _precision(records, scenario):
    if not records:
        return 1.0
    true_hits = 0
    for record in records:
        overlapping = [
            d for d in scenario.all_disruptions()
            if d.country_iso2 == record.country_iso2
            and d.span.overlaps(record.span.expand(before=HOUR,
                                                   after=HOUR))]
        if overlapping:
            true_hits += 1
    return true_hits / len(records)


def test_bench_ablation_corroboration(benchmark, pipeline_result,
                                      platform):
    scenario = pipeline_result.scenario
    two_signal = CurationPipeline(platform)
    windows = _sample_windows(scenario, two_signal)

    # One-signal rule: any single visible signal suffices (the external
    # corroborator is forced to agree).
    one_signal_config = replace(
        CurationConfig(), p_external_corroboration=10.0)

    def run_both():
        strict_records = []
        lax_records = []
        for iso2, window in windows:
            strict_records.extend(CurationPipeline(platform).investigate(
                iso2, window, STUDY_PERIOD))
            lax_records.extend(CurationPipeline(
                platform, one_signal_config).investigate(
                    iso2, window, STUDY_PERIOD))
        return strict_records, lax_records

    strict_records, lax_records = benchmark.pedantic(
        run_both, rounds=1, iterations=1)
    rows = [
        f"two-signal rule: {len(strict_records)} records, precision "
        f"{_precision(strict_records, scenario):.2f}",
        f"one-signal rule: {len(lax_records)} records, precision "
        f"{_precision(lax_records, scenario):.2f}",
    ]
    print_banner(
        "Ablation — curation corroboration rule",
        "One signal alone admits telescope noise; requiring two "
        "overlapping signals (or external corroboration) keeps the "
        "curated list clean",
        rows)
    assert len(lax_records) >= len(strict_records)
    assert _precision(strict_records, scenario) >= \
        _precision(lax_records, scenario)
