"""Ablation: the DataWorks second-pass review (§3.1.2).

The paper contracted DataWorks to review the curated records and fill
missing per-signal visibility fields.  This bench runs the review over a
sample of the curated list and reports the agreement rate and the mix of
corrections (additions of missed flags vs retractions) — the data-quality
metric that review produces.
"""

from benchmarks.conftest import print_banner
from repro.ioda.dataworks import DataWorksReviewer
from repro.signals.entities import EntityScope


def test_bench_ablation_dataworks(benchmark, pipeline_result, platform):
    records = [r for r in pipeline_result.curated_records
               if r.scope is EntityScope.COUNTRY][:120]
    reviewer = DataWorksReviewer(platform)

    def run():
        return reviewer.review_all(records)

    reviewed, changed = benchmark.pedantic(run, rounds=1, iterations=1)
    additions = sum(1 for outcome in changed for c in outcome.corrections
                    if "recorded False" in c)
    retractions = sum(1 for outcome in changed
                      for c in outcome.corrections
                      if "recorded True" in c)
    agreement = 1.0 - len(changed) / len(records)
    rows = [
        f"records reviewed: {len(records)}",
        f"agreement with first-pass curation: {agreement:.1%}",
        f"corrections: {additions} missed flags filled, "
        f"{retractions} flags retracted",
    ]
    print_banner(
        "Ablation — DataWorks second-pass review",
        "DataWorks was hired to add missing visibility fields; a "
        "well-curated list should mostly survive review, with "
        "corrections dominated by additions",
        rows)
    assert agreement > 0.7
    assert additions >= retractions
    assert len(reviewed) == len(records)
