"""Engineering bench: lineage-capsule recording overhead.

Not a paper table — this bench enforces the decision-provenance cost
contract (see :mod:`repro.obs.provenance`):

- **Disabled** (the default), the cost is structurally zero: no
  recorder object exists, every instrumentation site is a single
  ``current().provenance is None`` check, and the run emits no
  provenance events — the bench asserts the structure, not a timing,
  because an absent code path cannot be "fast", only absent.
- **Enabled**, every adjudication mints a content-addressed capsule
  (canonical-JSON blake2b per decision); the run must stay under 5%
  wall-time overhead.
"""

import time

from benchmarks.conftest import CANONICAL_SEED, print_banner
from repro.core.pipeline import ReproPipeline
from repro.obs.runtime import Observability
from repro.timeutils.timestamps import TimeRange, utc
from repro.world.scenario import ScenarioConfig

SMALL_CONFIG = ScenarioConfig(seed=CANONICAL_SEED, years=(2018,))
SMALL_PERIOD = TimeRange(utc(2018, 1, 1), utc(2018, 7, 1))
ROUNDS = 3
#: The acceptance bar: <5% wall-time overhead with capsules on (plus
#: a few ms of absolute slack to absorb scheduler noise on a short run).
OVERHEAD_BUDGET = 0.05
SLACK_SECONDS = 0.005


def _run_once(provenance):
    obs = Observability()
    pipeline = ReproPipeline(
        scenario_config=SMALL_CONFIG, study_period=SMALL_PERIOD,
        observability=obs, provenance=provenance)
    start = time.perf_counter()
    pipeline.run()
    return time.perf_counter() - start, obs


def _best_of(provenance):
    best, obs = min((_run_once(provenance) for _ in range(ROUNDS)),
                    key=lambda pair: pair[0])
    return best, obs


def test_bench_provenance_overhead():
    _run_once(False)  # warm interpreter and import caches
    off_best, off_obs = _best_of(False)
    on_best, on_obs = _best_of(True)
    overhead = on_best / off_best - 1.0

    # Disabled is structurally free: no recorder object at all, so the
    # per-decision cost is one attribute check.
    assert off_obs.provenance is None

    # Enabled actually recorded the decision chain and stayed inside
    # the overhead budget.
    assert on_obs.provenance is not None
    n_capsules = len(on_obs.provenance.capsules)
    assert n_capsules > 0, "provenance-enabled run minted no capsules"
    assert on_best <= off_best * (1.0 + OVERHEAD_BUDGET) \
        + SLACK_SECONDS, (on_best, off_best)

    print_banner(
        "Decision provenance — capsule recording overhead",
        "engineering bench (no paper analogue)",
        [f"provenance off   {off_best:8.3f} s  (best of {ROUNDS})",
         f"provenance on    {on_best:8.3f} s  (best of {ROUNDS})",
         f"overhead         {overhead * 100:+8.2f} %  "
         f"(budget {OVERHEAD_BUDGET * 100:.0f}%)",
         f"capsules         {n_capsules:8d}"])
