"""Table 3: country-year counts per group."""

from benchmarks.conftest import print_banner
from repro.analysis.country_year import CountryYearGroup, \
    group_country_years

YEARS = [2018, 2019, 2020, 2021]


def test_bench_table3_country_years(benchmark, pipeline_result):
    table = benchmark(group_country_years, pipeline_result.merged, YEARS)
    print_banner(
        "Table 3 — country-years per group",
        "Shutdowns 55 | Outages 310 | Neither 514",
        table.rows())
    counts = table.counts()
    assert counts[CountryYearGroup.SHUTDOWNS] < \
        counts[CountryYearGroup.OUTAGES] < \
        counts[CountryYearGroup.NEITHER]
