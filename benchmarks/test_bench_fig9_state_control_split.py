"""Figure 9: liberal-democracy CDFs split by majority state control of
the domestic address space."""

from benchmarks.conftest import print_banner
from repro.analysis.country_year import CountryYearGroup, \
    group_country_years
from repro.analysis.institutions import state_control_split

YEARS = [2018, 2019, 2020, 2021]


def test_bench_fig9_state_control_split(benchmark, pipeline_result):
    merged = pipeline_result.merged
    table = group_country_years(merged, YEARS)

    def compute():
        return state_control_split(
            table, merged.registry, pipeline_result.vdem,
            pipeline_result.state_shares)

    split = benchmark(compute)
    controlled = split["state_controlled"]
    non_controlled = split["non_state_controlled"]
    rows = (["-- state-controlled address space --"]
            + controlled.rows()
            + ["-- non-state-controlled address space --"]
            + non_controlled.rows())
    print_banner(
        "Figure 9 — lib-dem by group, split by state address control",
        "Shutdown curve left-shifted under state control (mean lib-dem "
        "0.13 vs 0.22): autocracy predicts shutdowns best where the "
        "state holds the addresses",
        rows)
    assert controlled.median(CountryYearGroup.SHUTDOWNS) <= \
        non_controlled.median(CountryYearGroup.SHUTDOWNS) + 0.05
    assert controlled.median(CountryYearGroup.SHUTDOWNS) < \
        controlled.median(CountryYearGroup.NEITHER)
