"""Table 2: merged-dataset event counts and top-5 countries."""

from benchmarks.conftest import print_banner
from repro.analysis.summary import summarize_merged


def test_bench_table2_counts(benchmark, pipeline_result):
    table = benchmark(summarize_merged, pipeline_result.merged)
    print_banner(
        "Table 2 — merged KIO-IODA dataset summary",
        "KIO 82 (45 matched) | IODA shutdowns 182 (152 matched) | "
        "714 outages; tops: Iraq/Myanmar/Syria (shutdowns), "
        "Togo/Venezuela/Niger (outages); 219 total shutdowns in 35 "
        "countries, outages in 150",
        table.rows())
    assert table.outage_total > 2 * table.union_shutdown_total
    assert table.n_outage_countries > 100
    assert table.ioda_matched_to_kio > 0.5 * table.ioda_shutdown_total
