"""Engineering bench: the streaming detection path.

Not a paper table — this bench guards the three performance claims the
``api.stream`` surface makes: pushing a bin is cheap (per-bin latency),
a streamed run does not hold more memory than the batch run it
reproduces (peak allocation), and detector state is O(window) — it
stops growing once the trailing history window fills, no matter how
long the stream runs.
"""

import tracemalloc

import numpy as np

import repro.api as api
from repro.rng import substream
from repro.signals.alerts import DetectorConfig
from repro.stream.detect import StreamingAlertDetector
from repro.timeutils.timestamps import TimeRange, utc
from repro.world.scenario import ScenarioConfig

from benchmarks.conftest import print_banner

SMALL_CONFIG = ScenarioConfig(seed=7, years=(2018,))
SMALL_PERIOD = TimeRange(utc(2018, 1, 1), utc(2018, 5, 1))
STEP = 14 * 86400


def _stream_run(step=STEP):
    session = api.stream(scenario_config=SMALL_CONFIG,
                         study_period=SMALL_PERIOD)
    pushed = 0
    for batch in session._source.batches(step):
        pushed += session.push(batch.bins)
        session.advance_watermark(batch.watermark)
    return session.finalize(), pushed


def test_bench_stream_push_latency(benchmark):
    """Mean wall time per pushed bin across a full streamed run."""
    result, pushed = benchmark.pedantic(
        _stream_run, rounds=3, iterations=1)
    assert result.curated_records
    assert pushed > 0
    per_bin_us = benchmark.stats.stats.mean / pushed * 1e6
    benchmark.extra_info["bins_per_round"] = pushed
    benchmark.extra_info["per_bin_us"] = round(per_bin_us, 2)
    print_banner(
        "Streaming push latency",
        "engineering guard (not a paper figure)",
        [f"bins per run        {pushed}",
         f"mean per-bin latency {per_bin_us:10.2f} us"])
    # Generous ceiling: a push must stay far below one 300s bin width.
    assert per_bin_us < 50_000


def _traced_peak(fn):
    tracemalloc.start()
    try:
        fn()
        return tracemalloc.get_traced_memory()[1]
    finally:
        tracemalloc.stop()


def test_bench_stream_peak_memory_is_step_bounded():
    """Peak allocation scales with the step in flight, not the period.

    Bin objects are the stream's working set: a fine step keeps only a
    step's worth materialized at once, so its peak sits far below a
    single period-wide advance (which must hold every bin) and within a
    small multiple of the batch path's whole-series arrays.
    """
    batch_peak = _traced_peak(
        lambda: api.run(scenario_config=SMALL_CONFIG,
                        study_period=SMALL_PERIOD, backend="serial"))
    fine_peak = _traced_peak(lambda: _stream_run(step=2 * 86400))
    giant_peak = _traced_peak(
        lambda: _stream_run(step=SMALL_PERIOD.duration))

    print_banner(
        "Streaming peak allocation",
        "engineering guard (not a paper figure)",
        [f"batch run          {batch_peak / 1e6:8.2f} MB",
         f"stream, 2d step    {fine_peak / 1e6:8.2f} MB",
         f"stream, one advance{giant_peak / 1e6:8.2f} MB",
         f"fine/batch ratio   {fine_peak / batch_peak:8.2f}x"])
    assert fine_peak < giant_peak
    # Loose absolute guard against the incremental state ballooning.
    assert fine_peak < 4 * batch_peak


def test_bench_detector_state_is_o_window():
    """Detector state stops growing once the history window fills."""
    config = DetectorConfig(threshold=0.8, history_seconds=7 * 86400)
    width = 300
    detector = StreamingAlertDetector(config, width)
    window = detector.window
    rng = substream(1, "bench-stream-state")
    chunk = 512

    sizes = []
    for start in range(0, 40 * window, chunk):
        starts = np.arange(start, start + chunk) * width
        detector.feed(starts, rng.uniform(0.5, 1.0, size=chunk))
        sizes.append(detector._median.tail_size)
        assert detector._median.tail_size <= window

    # Absorbing 40 windows' worth of bins left the retained state
    # pinned at the window size — O(window), not O(stream length).
    assert detector.n_bins >= 40 * window
    assert sizes[-1] == window
    assert sizes[len(sizes) // 2] == window
    print_banner(
        "Detector state bound",
        "engineering guard (not a paper figure)",
        [f"history window      {window} bins",
         f"bins absorbed       {detector.n_bins}",
         f"retained tail       {sizes[-1]} bins (== window)"])
