"""Figure 13: start minute-of-hour after conversion to local time."""

from benchmarks.conftest import print_banner
from repro.analysis.temporal import analyze_temporal


def test_bench_fig13_minute_local(benchmark, pipeline_result):
    analysis = benchmark(analyze_temporal, pipeline_result.merged)
    shutdowns, outages = analysis.shutdowns, analysis.outages
    rows = [
        f"start on the hour (local): shutdowns "
        f"{shutdowns.frac_on_hour_local:.1%} | outages "
        f"{outages.frac_on_hour_local:.1%}",
        f"(UTC on-the-hour for comparison: shutdowns "
        f"{shutdowns.frac_on_hour_utc:.1%})",
    ]
    print_banner(
        "Figure 13 — start minute of hour (local time)",
        "Local conversion lifts shutdowns on-the-hour from 47.3% to "
        "74.2%; outages remain uniform across 5-minute buckets",
        rows)
    assert shutdowns.frac_on_hour_local >= shutdowns.frac_on_hour_utc
    assert shutdowns.frac_on_hour_local > 0.6
    # Outages: close to uniform across the twelve 5-minute buckets.
    assert abs(outages.frac_on_hour_local - 1 / 12) < 0.07
