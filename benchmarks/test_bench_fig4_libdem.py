"""Figure 4: liberal-democracy score CDFs per country-year group."""

from benchmarks.conftest import print_banner
from repro.analysis.country_year import CountryYearGroup, \
    group_country_years
from repro.analysis.institutions import institution_distributions

YEARS = [2018, 2019, 2020, 2021]


def test_bench_fig4_libdem(benchmark, pipeline_result):
    merged = pipeline_result.merged
    table = group_country_years(merged, YEARS)

    def compute():
        return institution_distributions(
            table, merged.registry, pipeline_result.vdem,
            pipeline_result.worldbank)["liberal_democracy"]

    dist = benchmark(compute)
    rows = dist.rows()
    shutdown_cdf = dist.cdfs[CountryYearGroup.SHUTDOWNS]
    rows.append(f"max score among shutdown country-years: "
                f"{max(shutdown_cdf.sorted_samples):.3f}")
    print_banner(
        "Figure 4 — liberal democracy score by group (CDF medians)",
        "Medians: shutdowns 0.151 < outages 0.279 < neither 0.465; "
        "shutdown maximum 0.481",
        rows)
    assert dist.median(CountryYearGroup.SHUTDOWNS) < \
        dist.median(CountryYearGroup.OUTAGES) < \
        dist.median(CountryYearGroup.NEITHER)
    assert max(shutdown_cdf.sorted_samples) < 0.6
