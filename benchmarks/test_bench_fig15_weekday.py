"""Figure 15: start weekday PDFs and the Friday-deficit binomial test."""

from benchmarks.conftest import print_banner
from repro.analysis.temporal import analyze_temporal
from repro.timeutils.calendars import WEEKDAY_NAMES


def test_bench_fig15_weekday(benchmark, pipeline_result):
    analysis = benchmark(analyze_temporal, pipeline_result.merged)
    shutdowns, outages = analysis.shutdowns, analysis.outages
    rows = []
    for name, stats in (("shutdowns", shutdowns), ("outages", outages)):
        pdf = "  ".join(
            f"{WEEKDAY_NAMES[i]} {p:.3f}" for i, p in
            enumerate(stats.weekday_pdf))
        rows.append(f"{name:<10} {pdf}")
        rows.append(f"{name:<10} Friday-deficit two-tailed binomial "
                    f"p-value: {stats.friday_p_value:.2e}")
    print_banner(
        "Figure 15 — start weekday PDFs (local time)",
        "Shutdowns deficient on Fridays (p < 0.00065) — Friday weekends "
        "in Syria/Iraq/Iran/Sudan/Algeria; outages uniform",
        rows)
    assert shutdowns.weekday_pdf[4] < 1 / 7
    assert shutdowns.friday_p_value < 0.05
    assert outages.friday_p_value > 0.05
