"""Figure 5: military's capability to remove the regime, per group."""

from benchmarks.conftest import print_banner
from repro.analysis.country_year import CountryYearGroup, \
    group_country_years
from repro.analysis.institutions import institution_distributions

YEARS = [2018, 2019, 2020, 2021]


def test_bench_fig5_military(benchmark, pipeline_result):
    merged = pipeline_result.merged
    table = group_country_years(merged, YEARS)

    def compute():
        return institution_distributions(
            table, merged.registry, pipeline_result.vdem,
            pipeline_result.worldbank)["military_power"]

    dist = benchmark(compute)
    rows = dist.rows()
    neither_zero = dist.cdfs[CountryYearGroup.NEITHER](0.0)
    rows.append(f"fraction of Neither country-years at exactly 0: "
                f"{neither_zero:.2f}")
    print_banner(
        "Figure 5 — military capable of removing regime (CDFs)",
        "Over half of Neither country-years score 0; medians rise to "
        "0.25 (outages) and 0.33 (shutdowns)",
        rows)
    assert neither_zero > 0.4
    assert dist.median(CountryYearGroup.SHUTDOWNS) >= \
        dist.median(CountryYearGroup.OUTAGES) > 0.0
