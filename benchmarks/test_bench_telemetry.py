"""Engineering bench: heartbeat sampler overhead.

Not a paper table — this bench enforces the telemetry subsystem's
cost contract (see :mod:`repro.obs.telemetry`):

- **Enabled at the default-ish 1s interval**, the sampler is a
  background thread that wakes once a second to read metrics under
  their own locks; the run must pay under 2% wall-time overhead.
- **Disabled** (the default), the cost is exactly zero by
  construction: no sampler object, no thread, and the tracer's
  open-span bookkeeping stays off — the bench asserts the structure,
  not a timing, because an identical code path cannot be "fast", only
  absent.
"""

import threading
import time

from benchmarks.conftest import CANONICAL_SEED, print_banner
from repro.core.pipeline import ReproPipeline
from repro.obs.runtime import Observability
from repro.timeutils.timestamps import TimeRange, utc
from repro.world.scenario import ScenarioConfig

SMALL_CONFIG = ScenarioConfig(seed=CANONICAL_SEED, years=(2018,))
SMALL_PERIOD = TimeRange(utc(2018, 1, 1), utc(2018, 7, 1))
ROUNDS = 3
#: The acceptance bar: <2% wall-time overhead at a 1s interval (plus
#: a few ms of absolute slack to absorb scheduler noise on a short run).
OVERHEAD_BUDGET = 0.02
SLACK_SECONDS = 0.005


def _run_once(telemetry):
    obs = Observability()
    pipeline = ReproPipeline(
        scenario_config=SMALL_CONFIG, study_period=SMALL_PERIOD,
        observability=obs, telemetry=telemetry)
    start = time.perf_counter()
    pipeline.run()
    return time.perf_counter() - start, obs


def _best_of(telemetry):
    best, obs = min((_run_once(telemetry) for _ in range(ROUNDS)),
                    key=lambda pair: pair[0])
    return best, obs


def test_bench_heartbeat_overhead():
    _run_once(None)  # warm interpreter and import caches
    off_best, off_obs = _best_of(None)
    on_best, on_obs = _best_of("1s")
    overhead = on_best / off_best - 1.0

    # Disabled is structurally free: no sampler, no thread, no
    # open-span bookkeeping, no buffered heartbeats.
    assert off_obs.telemetry is None
    assert off_obs.heartbeats == []
    assert not off_obs.tracer.track_open
    assert not any(t.name == "repro-heartbeat"
                   for t in threading.enumerate())

    # Enabled actually sampled (at least the final beat) and stayed
    # inside the overhead budget.
    assert on_obs.heartbeats, "telemetry-enabled run never heartbeat"
    assert all(e["type"] == "heartbeat" for e in on_obs.heartbeats)
    assert on_best <= off_best * (1.0 + OVERHEAD_BUDGET) \
        + SLACK_SECONDS, (on_best, off_best)

    print_banner(
        "Heartbeat sampler — overhead at 1s interval",
        "engineering bench (no paper analogue)",
        [f"telemetry off    {off_best:8.3f} s  (best of {ROUNDS})",
         f"telemetry on     {on_best:8.3f} s  (best of {ROUNDS})",
         f"overhead         {overhead * 100:+8.2f} %  "
         f"(budget {OVERHEAD_BUDGET * 100:.0f}%)",
         f"heartbeats       {len(on_obs.heartbeats):8d}"])
