"""Ablation: Table 4 robustness specifications (§5.2, footnote 11).

The paper notes the mobilization result "is robust to several different
approaches": within-country analysis and week-level aggregation.  This
bench runs both alternative specifications and prints them next to the
day-level table.
"""

from benchmarks.conftest import print_banner
from repro.analysis.mobilization import mobilization_table
from repro.analysis.robustness import (
    weekly_mobilization_table,
    within_country_rates,
)
from repro.analysis.subnational import subnational_stats


def test_bench_ablation_robustness(benchmark, pipeline_result):
    merged = pipeline_result.merged

    def run_all():
        return (
            mobilization_table(merged, pipeline_result.coups,
                               pipeline_result.elections,
                               pipeline_result.protests),
            weekly_mobilization_table(merged, pipeline_result.coups,
                                      pipeline_result.elections,
                                      pipeline_result.protests),
            within_country_rates(merged, pipeline_result.coups,
                                 pipeline_result.elections,
                                 pipeline_result.protests),
        )

    daily, weekly, within = benchmark(run_all)
    rows = []
    for label, table in (("day-level", daily), ("week-level", weekly),
                         ("within shutdown countries", within)):
        rows.append(f"-- {label} --")
        for kind in ("election", "coup", "protest"):
            rows.append(
                f"  {kind:<9} shutdown risk ratio "
                f"{table.risk_ratio(kind):8.1f}x")
    stats = subnational_stats(pipeline_result.kio_events, merged.registry)
    rows.append("-- subnational filtering rationale (§4) --")
    rows.extend(f"  {row}" for row in stats.rows())
    print_banner(
        "Ablation — Table 4 robustness & subnational rationale",
        "Week-level aggregation and within-country analysis preserve the "
        "result; 85% of subnational shutdowns in India, 72% mobile-only",
        rows)
    for table in (weekly, within):
        assert table.risk_ratio("coup") > 10
        assert table.risk_ratio("protest") > 2
    assert stats.top_country_iso2 == "IN"
