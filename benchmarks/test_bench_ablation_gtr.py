"""Ablation: the Google-Transparency-style fourth signal (§3.1 fn. 2).

IODA added the Google Transparency Report as a country-level signal after
the paper's study period.  This bench quantifies what it would have
bought: GTR sees *user activity*, so it corroborates the mobile-only
shutdowns that the three infrastructure signals largely miss.
"""

from benchmarks.conftest import print_banner
from repro.gtr import GTRCorroborator, GTRSimulator
from repro.signals.entities import EntityScope
from repro.timeutils.timestamps import HOUR
from repro.world.scenario import STUDY_PERIOD


def test_bench_ablation_gtr(benchmark, pipeline_result):
    scenario = pipeline_result.scenario
    simulator = GTRSimulator(scenario)
    corroborator = GTRCorroborator(simulator)

    mobile_only = [d for d in scenario.shutdowns
                   if d.scope is EntityScope.COUNTRY and d.mobile_only
                   and d.span.duration >= 2 * HOUR
                   and STUDY_PERIOD.contains(d.span.start)]
    full = [d for d in scenario.shutdowns
            if d.scope is EntityScope.COUNTRY and not d.mobile_only
            and d.span.duration >= 2 * HOUR
            and STUDY_PERIOD.contains(d.span.start)][:30]

    def run():
        mobile_hits = sum(
            1 for d in mobile_only
            if corroborator.corroborates(d.country_iso2, d.span))
        full_hits = sum(
            1 for d in full
            if corroborator.corroborates(d.country_iso2, d.span))
        return mobile_hits, full_hits

    mobile_hits, full_hits = benchmark.pedantic(run, rounds=1,
                                                iterations=1)
    # How many mobile-only events did the IODA pipeline itself record?
    records = pipeline_result.curated_records
    ioda_mobile_hits = sum(
        1 for d in mobile_only
        if any(r.country_iso2 == d.country_iso2
               and r.span.overlaps(d.span) for r in records))
    rows = [
        f"mobile-only shutdowns in period: {len(mobile_only)}",
        f"  corroborated by GTR traffic:   {mobile_hits}",
        f"  recorded by 3-signal IODA:     {ioda_mobile_hits}",
        f"full blackouts sampled: {len(full)}; GTR corroborates "
        f"{full_hits}",
    ]
    print_banner(
        "Ablation — GTR as a fourth signal",
        "GTR (user traffic) sees mobile-only shutdowns that BGP/AP/"
        "telescope miss — the motivation for IODA adding it in 2022",
        rows)
    assert mobile_hits > ioda_mobile_hits
    assert mobile_hits >= 0.8 * len(mobile_only)
    assert full_hits >= 0.8 * len(full)
