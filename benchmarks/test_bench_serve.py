"""Engineering bench: the serving layer's artifact paths.

Not a paper table — this bench tracks the three response paths the
:mod:`repro.serve` stack distinguishes, on the same route:

- **Cold store read.**  A request whose artifact is not resident: the
  app thread-pools a disk read of the content-addressed object and
  caches the bytes.
- **Warm cache hit.**  The same request again: served straight from
  the single-flight LRU (the path the SLO baseline's p99 rides on).
- **Conditional revalidation.**  The same request with
  ``If-None-Match``: the ETag comparison short-circuits to a bodyless
  304 — never slower than shipping the full body.
"""

import asyncio

from benchmarks.conftest import print_banner
from repro.serve import ServeApp, build_store
from repro.timeutils.timestamps import TimeRange, utc
from repro.world.scenario import ScenarioConfig

import repro.api as api

SMALL_CONFIG = ScenarioConfig(seed=7, years=(2018,))
SMALL_PERIOD = TimeRange(utc(2018, 1, 1), utc(2018, 7, 1))
ROUNDS = 200


def _store(tmp_path):
    result = api.run(scenario_config=SMALL_CONFIG,
                     study_period=SMALL_PERIOD)
    return build_store(result, tmp_path / "store", tile_bins=64,
                       zooms=(0, 1), max_countries=3,
                       period=SMALL_PERIOD)


def _drive(app, target, headers=None, rounds=ROUNDS):
    """Mean seconds per request, measured inside one event loop."""

    async def scenario():
        import time
        await app.handle("GET", "/healthz")  # loop + executor warmup
        start = time.perf_counter()
        for _ in range(rounds):
            response = await app.handle("GET", target, headers)
        return (time.perf_counter() - start) / rounds, response

    return asyncio.run(scenario())


def test_bench_serve_cold_vs_warm_vs_304(benchmark, tmp_path):
    store = _store(tmp_path)
    iso2 = store.read_json("tiles/index")["countries"][0]
    target = f"/v1/tiles/{iso2}/bgp/1/0"

    # Cold: a one-entry cache and two alternating tiles means every
    # request evicts the other and re-reads the store.
    cold_app = ServeApp(store, cache_size=1)
    other = f"/v1/tiles/{iso2}/bgp/1/1"

    async def cold_pair():
        await cold_app.handle("GET", target)
        await cold_app.handle("GET", other)

    async def cold_scenario():
        import time
        await cold_app.handle("GET", "/healthz")
        start = time.perf_counter()
        for _ in range(ROUNDS // 2):
            await cold_pair()
        return (time.perf_counter() - start) / (ROUNDS // 2 * 2)

    cold_mean = asyncio.run(cold_scenario())
    assert cold_app.cache.evictions > 0

    # Warm: the same tile over and over, one resident entry.
    warm_app = ServeApp(store)
    warm_mean, warm_response = _drive(warm_app, target)
    assert warm_response.status == 200
    assert warm_app.cache.hits >= ROUNDS - 1

    # 304: same tile, conditional on its content address.
    etag = warm_response.etag
    cond_app = ServeApp(store)
    cond_app_headers = {"if-none-match": f'"{etag}"'}
    _drive(cond_app, target, rounds=1)  # make the entry resident
    cond_mean, cond_response = _drive(cond_app, target,
                                      cond_app_headers)
    assert cond_response.status == 304
    assert cond_response.body == b""

    benchmark.pedantic(
        lambda: asyncio.run(_bench_round(warm_app, target)),
        rounds=5, iterations=1)

    # The acceptance bar: a warm hit must beat a cold store read, and
    # revalidation must never cost more than shipping the body.
    assert warm_mean < cold_mean, (warm_mean, cold_mean)
    assert cond_mean <= warm_mean * 1.5, (cond_mean, warm_mean)
    print_banner(
        "Serving layer — cold read vs warm hit vs 304",
        "engineering bench (no paper analogue)",
        [f"cold store read   {cold_mean * 1e6:8.1f} us",
         f"warm cache hit    {warm_mean * 1e6:8.1f} us",
         f"304 revalidation  {cond_mean * 1e6:8.1f} us",
         f"warm speedup      {cold_mean / warm_mean:8.1f}x"])


async def _bench_round(app, target):
    for _ in range(50):
        await app.handle("GET", target)


def test_bench_serve_coalescing_burst(benchmark, tmp_path):
    """A synchronized burst of identical requests costs one store read."""
    store = _store(tmp_path)
    iso2 = store.read_json("tiles/index")["countries"][0]
    target = f"/v1/tiles/{iso2}/bgp/0/0"
    clients = 128

    async def burst():
        app = ServeApp(store)
        responses = await asyncio.gather(*(
            app.handle("GET", target) for _ in range(clients)))
        return app, responses

    app, responses = benchmark.pedantic(
        lambda: asyncio.run(burst()), rounds=5, iterations=1)
    assert all(r.status == 200 for r in responses)
    assert len({r.etag for r in responses}) == 1
    assert app.cache.misses == 1
    assert app.cache.coalesced == clients - 1
    print_banner(
        "Serving layer — single-flight burst",
        "engineering bench (no paper analogue)",
        [f"clients           {clients:8d}",
         f"store reads       {app.cache.misses:8d}",
         f"coalesced waiters {app.cache.coalesced:8d}"])
