"""Figure 16: fraction of events with an observable drop per signal."""

from benchmarks.conftest import print_banner
from repro.analysis.observability import observability_table
from repro.signals.kinds import SignalKind


def test_bench_fig16_signals(benchmark, pipeline_result):
    table = benchmark(observability_table, pipeline_result.merged)
    print_banner(
        "Figure 16 — % of events with observable drop per signal",
        "Shutdowns: 98.4/99.5/96.2, all-three 94.5%. Outages: "
        "97.7/92.0/65.4, all-three 55.3% — telescope is the weak "
        "signal for outages",
        table.rows())
    assert table.shutdown_all_pct > 85
    assert table.outage_all_pct < table.shutdown_all_pct - 15
    assert table.outage_pct[SignalKind.TELESCOPE] < \
        min(table.outage_pct[SignalKind.BGP],
            table.outage_pct[SignalKind.ACTIVE_PROBING]) - 15
