"""Figure 3: timelines of one KIO entry matched to a series of IODA
events (the paper's Syria/Iraq exam-series panels)."""

from benchmarks.conftest import print_banner
from repro.analysis.match_timelines import best_series_example, \
    match_timeline


def test_bench_fig3_matching(benchmark, pipeline_result):
    merged = pipeline_result.merged
    event_id = best_series_example(merged, min_ioda_events=4)
    assert event_id is not None

    timeline = benchmark(match_timeline, merged, event_id)
    print_banner(
        "Figure 3 — KIO entry matched to a series of IODA events",
        "One KIO date-range entry per exam series; IODA supplies the "
        "precise hours of each daily shutdown; 24-h lookback widens "
        "the match window",
        timeline.rows())
    assert len(timeline.ioda_spans) >= 4
    # IODA events are short (hours) inside the multi-day KIO range.
    kio_days = (timeline.kio_span_utc.duration / 86400)
    assert kio_days >= 2
    for span in timeline.ioda_spans:
        assert span.duration < timeline.kio_span_utc.duration
