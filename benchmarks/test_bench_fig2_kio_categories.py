"""Figure 2: KIO events per category per year, 2016-2021."""

from benchmarks.conftest import print_banner
from repro.analysis.kio_trends import kio_trends
from repro.kio.schema import KIOCategory


def test_bench_fig2_kio_categories(benchmark, pipeline_result):
    trends = benchmark(kio_trends, pipeline_result.kio_events)
    print_banner(
        "Figure 2 — KIO events per category per year",
        "Totals grow ~75 (2016) to ~200 (2019); full-network shutdowns "
        "are the dominant category with no sign of decline",
        trends.rows())
    assert set(trends.totals) == set(range(2016, 2022))
    assert trends.totals[2019] > trends.totals[2016]
    full_network = trends.series(KIOCategory.FULL_NETWORK)
    assert full_network[-1][1] > 0.7 * max(count for _, count
                                           in full_network)
