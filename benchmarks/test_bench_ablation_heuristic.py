"""Ablation: the §7 triage heuristic and the trained classifier.

Measures how well the paper's proposed four-question heuristic and the
logistic-regression classifier recover the shutdown/outage labels, and
which features carry the signal.
"""

import time

import numpy as np

from benchmarks.conftest import print_banner
from repro.core.classifier import FeatureExtractor, evaluate, \
    train_classifier
from repro.core.heuristics import ShutdownTriage, TriageVerdict


def _libdem_index(pipeline_result):
    registry = pipeline_result.merged.registry
    return {
        (registry.by_name(r.country_name).iso2, r.year):
            r.liberal_democracy
        for r in pipeline_result.vdem}


def _mobilization_cells(pipeline_result):
    registry = pipeline_result.merged.registry
    cells = set()
    for dataset in (pipeline_result.coups, pipeline_result.elections,
                    pipeline_result.protests):
        for record in dataset:
            cells.add((registry.by_name(record.country_name).iso2,
                       record.day))
    return cells


def test_bench_ablation_heuristic(benchmark, pipeline_result):
    merged = pipeline_result.merged
    libdem = _libdem_index(pipeline_result)
    cells = _mobilization_cells(pipeline_result)
    triage = ShutdownTriage(merged.registry, cells, libdem,
                            pipeline_result.state_shares)
    extractor = FeatureExtractor(merged.registry, libdem,
                                 pipeline_result.state_shares)
    events = merged.labeled
    records = [e.record for e in events]
    labels = np.array([e.is_shutdown for e in events], dtype=np.int64)

    def run_both():
        # Heuristic verdicts.
        verdicts = []
        for event in events:
            year = time.gmtime(event.record.span.start).tm_year
            verdicts.append(
                triage.assess(event.record, year).verdict
                is TriageVerdict.LIKELY_SHUTDOWN)
        predictions = np.array(verdicts)
        tp = int(np.sum(predictions & (labels == 1)))
        fp = int(np.sum(predictions & (labels == 0)))
        fn = int(np.sum(~predictions & (labels == 1)))
        heuristic = {
            "precision": tp / (tp + fp) if tp + fp else 0.0,
            "recall": tp / (tp + fn) if tp + fn else 0.0,
        }
        # Classifier with a 70/30 split.
        features = extractor.extract(records)
        rng = np.random.default_rng(0)
        order = rng.permutation(len(labels))
        split = int(0.7 * len(labels))
        model = train_classifier(
            features[order[:split]], labels[order[:split]]).model
        metrics = evaluate(model, features[order[split:]],
                           labels[order[split:]])
        return heuristic, metrics, model.feature_importance()[:5]

    heuristic, metrics, top_features = benchmark.pedantic(
        run_both, rounds=1, iterations=1)
    rows = [
        f"triage heuristic: precision {heuristic['precision']:.2f}, "
        f"recall {heuristic['recall']:.2f}",
        f"classifier (holdout): accuracy {metrics['accuracy']:.2f}, "
        f"precision {metrics['precision']:.2f}, "
        f"recall {metrics['recall']:.2f}, f1 {metrics['f1']:.2f}",
        "top features: " + ", ".join(
            f"{name} ({weight:+.2f})" for name, weight in top_features),
    ]
    print_banner(
        "Ablation — §7 triage heuristic and shutdown classifier",
        "The paper proposes these as future work; the fingerprints of "
        "§5.3 should carry most of the signal",
        rows)
    assert heuristic["recall"] > 0.6
    assert metrics["f1"] > 0.7
