#!/usr/bin/env python3
"""Programmatic monitoring against the IODA-style API.

A downstream rapid-response tool would poll IODA's public API rather than
scrape the dashboard.  This example drives :class:`repro.ioda.api.
IODAClient` the way such a tool would:

1. pull a week of three-signal data for a watched country,
2. list the alert episodes the platform raised in that window,
3. walk the paginated curated-event feed for the same country,
4. cross-check one event against the Google-Transparency-style traffic
   signal (the post-study extension, §3.1 footnote 2), and
5. gate the whole thing on the run's health scorecard — a monitoring
   tool should refuse to alert off a dataset that no longer reproduces
   the paper's shape.

Run:  python examples/api_monitoring.py
"""

import sys
from pathlib import Path

import repro.api as api
from repro.gtr import GTRCorroborator, GTRSimulator
from repro.signals.entities import Entity
from repro.timeutils.timestamps import DAY, format_utc

CACHE = Path(__file__).resolve().parent.parent / ".cache"


def main() -> None:
    result = api.run(cache_dir=CACHE)
    health = result.health

    # 0. Refuse to monitor off a dataset that failed its scorecard.
    print(f"run health: {health.grade} "
          f"({len(health.failed)} failed, {len(health.warned)} warned "
          f"of {len(health.results)} checks)")
    for check in health.failed:
        print(f"  FAIL {check.check.name}: {check.value:g} vs "
              f"target {check.check.target:g}")
    if health.grade == "fail":
        print("dataset no longer reproduces the paper; not monitoring")
        sys.exit(1)
    print()

    client = api.client(result)

    # Watch the country with the most curated events.
    from collections import Counter
    busiest = Counter(
        r.country_iso2 for r in result.curated_records).most_common(1)[0][0]
    country = result.scenario.registry.get(busiest)
    print(f"Watching {country} (busiest in the curated feed)\n")

    # 1. A week of signals around its first curated event.
    first = client.get_events(country_iso2=busiest, limit=1).events[0]
    window_start = first.span.start - 3 * DAY
    window_end = first.span.end + 3 * DAY
    payloads = client.get_all_signals(
        Entity.country(busiest), window_start, window_end)
    for name, payload in payloads.items():
        low = min(payload.values)
        high = max(payload.values)
        print(f"signal {name:<15} bins={len(payload.values):5d}  "
              f"range [{low:.0f}, {high:.0f}]")

    # 2. Alerts in the window.
    alerts = client.get_alerts(Entity.country(busiest), window_start,
                               window_end)
    print(f"\nalert episodes in window: {len(alerts)}")
    for entry in alerts[:5]:
        print(f"  {entry.signal.value:<15} {entry.episode.span}  "
              f"depth={entry.episode.depth:.2f}")

    # 3. The paginated event feed (opaque cursors, not offset math).
    total = 0
    cursor = None
    while True:
        page = client.get_events(country_iso2=busiest, limit=25,
                                 cursor=cursor)
        total += len(page.events)
        if page.cursor is None:
            break
        cursor = page.cursor
    print(f"\ncurated events for {busiest}: {total}")

    # 4. Cross-check the first event against GTR traffic.
    corroborator = GTRCorroborator(GTRSimulator(result.scenario))
    confirmed = corroborator.corroborates(busiest, first.span)
    print(f"\nGTR cross-check of {format_utc(first.span.start)} event: "
          f"{'confirmed' if confirmed else 'not confirmed'}")


if __name__ == "__main__":
    main()
