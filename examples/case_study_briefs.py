#!/usr/bin/env python3
"""Investigator briefs for notable events.

Generates case-study briefs — the paper's Fig 1 / Table 1 narrative,
programmatically — for three contrasting curated events: a KIO-matched
shutdown, a cause-only shutdown, and a severe spontaneous outage.

Run:  python examples/case_study_briefs.py
"""

from pathlib import Path

import repro.api as api
from repro import IODAPlatform
from repro.analysis.case_study import build_case_study
from repro.core.heuristics import ShutdownTriage

CACHE = Path(__file__).resolve().parent.parent / ".cache"


def build_triage(result) -> ShutdownTriage:
    registry = result.merged.registry
    libdem = {
        (registry.by_name(r.country_name).iso2, r.year):
            r.liberal_democracy
        for r in result.vdem}
    cells = set()
    for dataset in (result.coups, result.elections, result.protests):
        for record in dataset:
            cells.add((registry.by_name(record.country_name).iso2,
                       record.day))
    return ShutdownTriage(registry, cells, libdem, result.state_shares)


def main() -> None:
    result = api.run(cache_dir=CACHE).events
    merged = result.merged
    platform = IODAPlatform(result.scenario)
    triage = build_triage(result)

    picks = []
    picks.append(("KIO-matched shutdown", next(
        e for e in merged.ioda_shutdowns()
        if e.via_kio_match and e.record.visible_in_all_signals)))
    picks.append(("cause-only shutdown", next(
        e for e in merged.ioda_shutdowns()
        if e.via_cause and not e.via_kio_match)))
    picks.append(("severe spontaneous outage", max(
        merged.ioda_outages(), key=lambda e: e.record.duration_hours)))

    for title, event in picks:
        study = build_case_study(merged, platform,
                                 event.record.record_id, triage)
        print("=" * 64)
        print(f"-- {title} --")
        for row in study.rows():
            print(row)
        print()


if __name__ == "__main__":
    main()
