#!/usr/bin/env python3
"""Rapid shutdown triage after a coup (the paper's §7 tool, Myanmar-style).

When connectivity collapses during a political crisis, advocacy
organizations need to assess — fast — whether they are looking at a
government shutdown or an unlucky infrastructure failure.  This example
plays out that scenario:

1. find the coup blackout in the synthetic world,
2. curate it from signals as IODA's operators would,
3. run the paper's four-question triage heuristic on the fresh record,
   and contrast the verdict with a spontaneous outage elsewhere the same
   month.

Run:  python examples/coup_blackout_triage.py
"""

import time

from repro import CurationPipeline, IODAPlatform, ScenarioConfig, \
    ScenarioGenerator, STUDY_PERIOD
from repro.core.heuristics import ShutdownTriage
from repro.datasets import (
    CoupDataset,
    ElectionDataset,
    ProtestDataset,
    VDemDataset,
)
from repro.timeutils.timestamps import TimeRange, format_utc
from repro.topology.eyeballs import EyeballEstimates
from repro.topology.geolocation import GeoDatabase
from repro.topology.metrics import compute_state_shares
from repro.topology.prefix2as import Prefix2ASSnapshot
from repro.topology.state_owned import StateOwnedASList
from repro.world.events import EventKind


def build_triage(scenario) -> ShutdownTriage:
    """Assemble the triage tool from the public datasets."""
    registry = scenario.registry
    seed = scenario.seed
    vdem = VDemDataset.from_profiles(seed, registry, scenario.profiles)
    libdem = {
        (registry.by_name(r.country_name).iso2, r.year):
            r.liberal_democracy
        for r in vdem}
    cells = set()
    for dataset in (
            CoupDataset.from_events(seed, registry, scenario.events),
            ElectionDataset.from_events(seed, registry, scenario.events),
            ProtestDataset.from_events(seed, registry, scenario.events)):
        for record in dataset:
            cells.add(
                (registry.by_name(record.country_name).iso2, record.day))
    shares = compute_state_shares(
        Prefix2ASSnapshot.from_topology(scenario.topology, seed),
        GeoDatabase.from_topology(scenario.topology, seed),
        StateOwnedASList.from_topology(scenario.topology, seed),
        EyeballEstimates.from_topology(scenario.topology, seed))
    return ShutdownTriage(registry, cells, libdem, shares)


def main() -> None:
    scenario = ScenarioGenerator(ScenarioConfig(seed=2023)).generate()
    platform = IODAPlatform(scenario)
    pipeline = CurationPipeline(platform)
    triage = build_triage(scenario)

    # The blackout ordered on a coup day.
    coup_blackout = next(
        d for d in scenario.shutdowns
        if d.trigger_event_id is not None
        and STUDY_PERIOD.contains(d.span.start)
        and any(e.event_id == d.trigger_event_id
                and e.kind is EventKind.COUP for e in scenario.events))
    print(f"Crisis: blackout in {coup_blackout.country_iso2} starting "
          f"{format_utc(coup_blackout.span.start)}")

    window = TimeRange(
        coup_blackout.span.start - pipeline.config.window_lead,
        coup_blackout.span.end + pipeline.config.window_tail)
    records = pipeline.investigate(
        coup_blackout.country_iso2, window, STUDY_PERIOD)
    record = max(records, key=lambda r: r.span.duration)
    year = time.gmtime(record.span.start).tm_year
    print("\nTriage of the fresh record:")
    for row in triage.assess(record, year).rows():
        print(f"  {row}")

    # Contrast: a spontaneous outage.
    outage = next(d for d in scenario.outages
                  if STUDY_PERIOD.contains(d.span.start)
                  and d.severity >= 0.95 and d.span.duration >= 2 * 3600)
    window = TimeRange(outage.span.start - pipeline.config.window_lead,
                       outage.span.end + pipeline.config.window_tail)
    outage_records = pipeline.investigate(
        outage.country_iso2, window, STUDY_PERIOD)
    if outage_records:
        record = max(outage_records, key=lambda r: r.span.duration)
        year = time.gmtime(record.span.start).tm_year
        print(f"\nContrast — outage in {outage.country_iso2} "
              f"({outage.cause.value}):")
        for row in triage.assess(record, year).rows():
            print(f"  {row}")


if __name__ == "__main__":
    main()
