#!/usr/bin/env python3
"""Exam-season forensics (the paper's Syria/Iraq scenario, §4 Fig 3).

Governments in several countries order nationwide blackouts during the
national exam window, every exam morning, at the same local hour, for the
same round number of hours.  This example:

1. finds an exam series in the synthetic world,
2. renders IODA's three signals across two exam days as an ASCII strip,
3. shows how one KIO date-range entry matches the whole series of precise
   IODA events (Figure 3's bands), and
4. verifies the §5.3 fingerprints on the series: on-the-hour starts,
   30-minute-multiple durations, exactly-one-day recurrence, weekend gaps.

Run:  python examples/exam_season_forensics.py
"""

from collections import Counter

import numpy as np

from repro import IODAPlatform, ScenarioConfig, ScenarioGenerator, \
    STUDY_PERIOD
from repro.signals.entities import Entity
from repro.signals.kinds import SignalKind
from repro.timeutils.timestamps import DAY, HOUR, TimeRange, format_utc
from repro.timeutils.timezones import local_minute_of_hour
from repro.world.disruptions import Cause


from repro.viz import sparkline


def ascii_strip(series, width=72) -> str:
    """Render a series as a one-line ASCII sparkline."""
    return sparkline(series, width=width)


def main() -> None:
    scenario = ScenarioGenerator(ScenarioConfig(seed=2023)).generate()
    platform = IODAPlatform(scenario)

    # The longest exam series in the study period.
    series_counts = Counter(
        d.series_id for d in scenario.shutdowns
        if d.cause is Cause.EXAM and d.series_id
        and STUDY_PERIOD.contains(d.span.start))
    series_id, n_days = series_counts.most_common(1)[0]
    days = sorted((d for d in scenario.shutdowns
                   if d.series_id == series_id),
                  key=lambda d: d.span.start)
    country = scenario.registry.get(days[0].country_iso2)
    print(f"Exam series {series_id!r}: {n_days} shutdown days in "
          f"{country.name}")

    # Two-day signal strip around the first two exam days.
    window = TimeRange(days[0].span.start - 6 * HOUR,
                       days[0].span.start + 42 * HOUR)
    print(f"\nIODA signals {format_utc(window.start)} .. "
          f"{format_utc(window.end)}:")
    for kind in SignalKind:
        series = platform.signal(Entity.country(country.iso2), kind,
                                 window)
        print(f"  {kind.label:<15} |{ascii_strip(series)}|")

    # Fingerprints.
    print("\nSeries fingerprints (§5.3):")
    on_hour = sum(
        1 for d in days
        if local_minute_of_hour(d.span.start, country.utc_offset) == 0)
    print(f"  starts on the local hour: {on_hour}/{len(days)}")
    durations = {d.duration_hours for d in days}
    print(f"  distinct durations (hours): "
          f"{sorted(round(x, 1) for x in durations)}")
    gaps = Counter(
        round((b.span.start - a.span.start) / DAY)
        for a, b in zip(days, days[1:]))
    print(f"  recurrence gaps (days -> count): {dict(sorted(gaps.items()))}")
    weekend_gaps = [gap for gap in gaps if gap >= 2]
    if weekend_gaps:
        from repro.timeutils.calendars import WEEKDAY_NAMES
        weekend = "-".join(WEEKDAY_NAMES[d]
                           for d in sorted(country.workweek.weekend))
        print(f"  multi-day gaps skip the {weekend} weekend "
              f"in {country.name}")

    assert on_hour == len(days)
    assert all(abs(d.duration_hours * 2 - round(d.duration_hours * 2))
               < 1e-9 for d in days)
    print("\nAll fingerprints verified against ground truth.")


if __name__ == "__main__":
    main()
