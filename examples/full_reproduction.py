#!/usr/bin/env python3
"""Full reproduction: every table and figure in one run.

Runs the complete pipeline (world → IODA observation → curation → KIO →
merge → analysis) and prints the reproduced version of each table and
figure.  The curation stage is disk-cached under ``.cache/``, so the
first run takes a few minutes and subsequent runs a few seconds.

Run:  python examples/full_reproduction.py
"""

from pathlib import Path

import repro.api as api
from repro.analysis import (
    analyze_temporal,
    group_country_years,
    institution_distributions,
    kio_trends,
    match_timeline,
    mobilization_table,
    observability_table,
    state_control_split,
    state_share_distributions,
    summarize_merged,
)
from repro.analysis.match_timelines import best_series_example

YEARS = [2018, 2019, 2020, 2021]
CACHE = Path(__file__).resolve().parent.parent / ".cache"


def section(title: str) -> None:
    print()
    print("#" * 70)
    print(f"# {title}")
    print("#" * 70)


def main() -> None:
    run = api.run(seed=2023, cache_dir=CACHE)
    result, stats = run.events, run.stats
    merged = result.merged

    section("Figure 2 — KIO events per category per year")
    for row in kio_trends(result.kio_events).rows():
        print(row)

    section("Figure 3 — KIO entry matched to a series of IODA events")
    event_id = best_series_example(merged, min_ioda_events=4)
    if event_id is not None:
        for row in match_timeline(merged, event_id).rows():
            print(row)

    section("Table 2 — merged dataset summary")
    for row in summarize_merged(merged).rows():
        print(row)

    section("Table 3 — country-years per group")
    table = group_country_years(merged, YEARS)
    for row in table.rows():
        print(row)

    section("Figures 4-7 — institutional and economic CDFs")
    dists = institution_distributions(
        table, merged.registry, result.vdem, result.worldbank)
    for name in ("liberal_democracy", "military_power", "media_bias",
                 "freedom_discussion_men", "gdp_per_capita",
                 "broadband_fraction"):
        for row in dists[name].rows():
            print(row)
        print()

    section("Figure 8 — state ownership CDFs")
    for dist in state_share_distributions(
            table, result.state_shares).values():
        for row in dist.rows():
            print(row)

    section("Figure 9 — lib-dem split by state control of addresses")
    for name, dist in state_control_split(
            table, merged.registry, result.vdem,
            result.state_shares).items():
        print(f"-- {name} --")
        for row in dist.rows():
            print(row)

    section("Table 4 — mobilization events")
    for row in mobilization_table(merged, result.coups, result.elections,
                                  result.protests).rows():
        print(row)

    section("Figures 10-15 — temporal fingerprints")
    for row in analyze_temporal(merged).rows():
        print(row)

    section("Figure 16 — signal observability")
    for row in observability_table(merged).rows():
        print(row)

    section("Execution report")
    for row in stats.rows():
        print(row)


if __name__ == "__main__":
    main()
