#!/usr/bin/env python3
"""Quickstart: observe one shutdown end-to-end.

Generates the synthetic world, simulates IODA's three signals around one
Syrian exam-season shutdown, runs the curation pipeline on that window,
and matches the curated record against the KIO dataset — the full
measurement-to-label path of the paper in a few seconds.

Run:  python examples/quickstart.py
"""

from repro import CurationPipeline, IODAPlatform, ScenarioConfig, \
    ScenarioGenerator, STUDY_PERIOD
from repro.core.labeling import label_events
from repro.core.matching import EventMatcher
from repro.kio.compiler import KIOCompiler
from repro.kio.harmonize import Harmonizer
from repro.kio.snapshots import AnnualSnapshot
from repro.timeutils.timestamps import TimeRange, format_utc
from repro.world.disruptions import Cause


def main() -> None:
    print("1. Generating the synthetic world (seed 2023)...")
    scenario = ScenarioGenerator(ScenarioConfig(seed=2023)).generate()
    print(f"   {len(scenario.registry)} countries, "
          f"{len(scenario.shutdowns)} ground-truth shutdowns, "
          f"{len(scenario.outages)} spontaneous outages")

    # Pick one exam-season shutdown in Syria.
    event = next(d for d in scenario.shutdowns
                 if d.country_iso2 == "SY" and d.cause is Cause.EXAM
                 and STUDY_PERIOD.contains(d.span.start))
    print(f"\n2. Ground truth: {event}")

    print("\n3. Simulating IODA and curating the investigation window...")
    platform = IODAPlatform(scenario)
    pipeline = CurationPipeline(platform)
    window = TimeRange(event.span.start - pipeline.config.window_lead,
                       event.span.end + pipeline.config.window_tail)
    records = pipeline.investigate("SY", window, STUDY_PERIOD)
    for record in records:
        print(f"   curated: {format_utc(record.start)} .. "
              f"{format_utc(record.end)}  cause={record.cause!r}  "
              f"visible in {record.n_signals_visible}/3 signals")

    print("\n4. Compiling KIO and matching...")
    compiler = KIOCompiler(scenario.seed, scenario.registry)
    canonical = compiler.compile(scenario.shutdowns, scenario.restrictions,
                                 scenario.config.years)
    snapshots = [AnnualSnapshot.serialize(y, canonical)
                 for y in scenario.config.years]
    kio_events = Harmonizer().harmonize(snapshots)
    matcher = EventMatcher(scenario.registry)
    matches = matcher.match(
        [e for e in kio_events if e.nationwide and e.is_full_network],
        records)
    labeled = label_events(records, matches)
    for item in labeled:
        provenance = []
        if item.via_kio_match:
            provenance.append("matched KIO")
        if item.via_cause:
            provenance.append("cause reporting")
        print(f"   record {item.record.record_id}: "
              f"label={item.label.value}  "
              f"via {', '.join(provenance) or 'nothing'}")

    assert any(item.is_shutdown for item in labeled), \
        "the exam shutdown should be labeled a shutdown"
    print("\nDone: the pipeline recovered the shutdown from observed "
          "data alone.")


if __name__ == "__main__":
    main()
