"""Tests for the robustness checks and subnational statistics."""

import pytest

from repro.analysis.robustness import (
    mobilization_with_margin,
    weekly_mobilization_table,
    within_country_rates,
)
from repro.analysis.subnational import subnational_stats


class TestWeeklyAggregation:
    @pytest.fixture(scope="class")
    def weekly(self, pipeline_result):
        return weekly_mobilization_table(
            pipeline_result.merged, pipeline_result.coups,
            pipeline_result.elections, pipeline_result.protests)

    def test_shutdown_elevation_survives_weekly(self, weekly):
        """Footnote 11: week-level aggregation produces the same result."""
        assert weekly.risk_ratio("election") > 2
        assert weekly.risk_ratio("coup") > 20
        assert weekly.risk_ratio("protest") > 2

    def test_weekly_rates_higher_than_daily(self, weekly, pipeline_result):
        """A week is a coarser cell, so conditional rates rise but the
        qualitative picture is unchanged."""
        from repro.analysis.mobilization import mobilization_table
        daily = mobilization_table(
            pipeline_result.merged, pipeline_result.coups,
            pipeline_result.elections, pipeline_result.protests)
        weekly_rate = weekly.rates["election"][0].rate_given_condition
        daily_rate = daily.rates["election"][0].rate_given_condition
        # Coarser cells raise the conditional rate in expectation, but a
        # single seed can land a hair under; only a clear drop would mean
        # the aggregation is wrong.
        assert weekly_rate >= 0.9 * daily_rate


class TestWithinCountry:
    @pytest.fixture(scope="class")
    def within(self, pipeline_result):
        return within_country_rates(
            pipeline_result.merged, pipeline_result.coups,
            pipeline_result.elections, pipeline_result.protests)

    def test_mobilization_predicts_within_shutdown_countries(self, within):
        """Footnote 11: the effect is not a cross-country artifact —
        among shutdown-prone countries, event days still carry far more
        shutdown risk than ordinary days."""
        assert within.risk_ratio("coup") > 10
        assert within.risk_ratio("protest") > 2

    def test_universe_restricted(self, within, pipeline_result):
        from repro.analysis.mobilization import mobilization_table
        daily = mobilization_table(
            pipeline_result.merged, pipeline_result.coups,
            pipeline_result.elections, pipeline_result.protests)
        # Fewer countries => strictly fewer cells than the full table.
        assert (within.rates["election"][0].condition_cells
                + within.rates["election"][0].other_cells) < \
            (daily.rates["election"][0].condition_cells
             + daily.rates["election"][0].other_cells)


class TestMarginSensitivity:
    def test_margin_preserves_elevation(self, pipeline_result):
        """±1 day widening must keep shutdowns strongly elevated."""
        table = mobilization_with_margin(
            pipeline_result.merged, pipeline_result.coups,
            pipeline_result.elections, pipeline_result.protests,
            margin_days=1)
        assert table.risk_ratio("election") > 3
        assert table.risk_ratio("coup") > 20
        assert table.risk_ratio("protest") > 3

    def test_margin_captures_at_least_same_day_hits(self, pipeline_result):
        from repro.analysis.mobilization import mobilization_table
        exact = mobilization_table(
            pipeline_result.merged, pipeline_result.coups,
            pipeline_result.elections, pipeline_result.protests)
        widened = mobilization_with_margin(
            pipeline_result.merged, pipeline_result.coups,
            pipeline_result.elections, pipeline_result.protests,
            margin_days=1)
        for kind in ("election", "coup", "protest"):
            assert widened.rates[kind][0].outcomes_on_condition >= \
                exact.rates[kind][0].outcomes_on_condition


class TestSubnational:
    def test_india_concentration(self, pipeline_result):
        stats = subnational_stats(pipeline_result.kio_events,
                                  pipeline_result.merged.registry)
        assert stats.n_subnational_full_network > 50
        # The paper: 85% of subnational shutdowns in India, 72% mobile.
        assert stats.top_country_iso2 == "IN"
        assert stats.top_country_fraction > 0.7
        assert 0.5 < stats.top_country_mobile_only_fraction < 0.9

    def test_rows_render(self, pipeline_result):
        stats = subnational_stats(pipeline_result.kio_events,
                                  pipeline_result.merged.registry)
        assert len(stats.rows()) == 3

    def test_empty_input(self, registry):
        stats = subnational_stats([], registry)
        assert stats.n_subnational_full_network == 0
