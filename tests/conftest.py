"""Shared fixtures.

The full pipeline (world → observation → curation → merge) is expensive,
so it runs once per session and caches its curated records under
``.cache/`` in the repository root; subsequent test runs load the cache
and finish in seconds.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.core.pipeline import PipelineResult, ReproPipeline
from repro.countries.registry import CountryRegistry, default_registry
from repro.ioda.platform import IODAPlatform
from repro.world.scenario import (
    STUDY_PERIOD,
    ScenarioConfig,
    ScenarioGenerator,
    WorldScenario,
)

REPO_ROOT = Path(__file__).resolve().parent.parent
CACHE_DIR = REPO_ROOT / ".cache"

#: The canonical seed used by tests, benches, and EXPERIMENTS.md.
CANONICAL_SEED = 2023


@pytest.fixture(scope="session")
def registry() -> CountryRegistry:
    return default_registry()


@pytest.fixture(scope="session")
def scenario() -> WorldScenario:
    """The canonical synthetic world (fast to generate, ~0.5 s)."""
    return ScenarioGenerator(ScenarioConfig(seed=CANONICAL_SEED)).generate()


@pytest.fixture(scope="session")
def platform(scenario: WorldScenario) -> IODAPlatform:
    return IODAPlatform(scenario)


@pytest.fixture(scope="session")
def pipeline_result() -> PipelineResult:
    """The full pipeline output (curation stage disk-cached)."""
    pipeline = ReproPipeline(
        scenario_config=ScenarioConfig(seed=CANONICAL_SEED),
        cache_dir=CACHE_DIR)
    return pipeline.run()


@pytest.fixture(scope="session")
def study_period():
    return STUDY_PERIOD
