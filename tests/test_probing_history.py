"""Tests for the response-rate estimator."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ConfigurationError
from repro.probing.history import ResponseRateEstimator
from repro.rng import substream


class TestResponseRateEstimator:
    def test_prior_mean_before_observations(self):
        estimator = ResponseRateEstimator(prior_alpha=2.0, prior_beta=3.0)
        assert estimator.estimate(1) == pytest.approx(0.4)

    def test_converges_to_true_rate(self):
        estimator = ResponseRateEstimator(forgetting=1.0)
        rng = substream(1, "history")
        true_rate = 0.7
        for _ in range(3000):
            answered = bool(rng.random() < 1 - (1 - true_rate) ** 4)
            estimator.observe(7, probes_sent=4, answered=answered,
                              believed_up=True)
        # The estimator tracks the per-*round* answer rate it observes.
        round_rate = 1 - (1 - true_rate) ** 4
        assert estimator.estimate(7) == pytest.approx(round_rate, abs=0.05)

    def test_down_rounds_carry_no_information(self):
        estimator = ResponseRateEstimator()
        before = estimator.estimate(9)
        for _ in range(100):
            estimator.observe(9, probes_sent=4, answered=False,
                              believed_up=False)
        assert estimator.estimate(9) == before
        assert estimator.n_tracked() == 0

    def test_forgetting_adapts_to_change(self):
        estimator = ResponseRateEstimator(forgetting=0.98)
        for _ in range(500):
            estimator.observe(3, probes_sent=4, answered=True,
                              believed_up=True)
        high = estimator.estimate(3)
        for _ in range(500):
            estimator.observe(3, probes_sent=4, answered=False,
                              believed_up=True)
        low = estimator.estimate(3)
        assert high > 0.9
        assert low < 0.2

    def test_usable_blocks_filter(self):
        estimator = ResponseRateEstimator()
        for _ in range(200):
            estimator.observe(1, probes_sent=4, answered=True,
                              believed_up=True)
            estimator.observe(2, probes_sent=4, answered=False,
                              believed_up=True)
        usable = estimator.usable_blocks([1, 2], min_rate=0.15)
        assert usable == (1,)

    def test_estimates_vector(self):
        estimator = ResponseRateEstimator()
        values = estimator.estimates([1, 2, 3])
        assert values.shape == (3,)
        assert np.allclose(values, values[0])

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ResponseRateEstimator(prior_alpha=0.0)
        with pytest.raises(ConfigurationError):
            ResponseRateEstimator(forgetting=0.0)
        estimator = ResponseRateEstimator()
        with pytest.raises(ConfigurationError):
            estimator.observe(1, probes_sent=0, answered=True,
                              believed_up=True)

    @settings(max_examples=30, deadline=None)
    @given(st.floats(min_value=0.05, max_value=0.95))
    def test_estimate_always_in_unit_interval(self, rate):
        estimator = ResponseRateEstimator()
        rng = substream(2, "prop", int(rate * 1000))
        for _ in range(200):
            estimator.observe(5, probes_sent=4,
                              answered=bool(rng.random() < rate),
                              believed_up=True)
        assert 0.0 < estimator.estimate(5) < 1.0
