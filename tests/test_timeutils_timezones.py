"""Tests for repro.timeutils.timezones."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import TimeRangeError
from repro.timeutils.timestamps import DAY, HOUR, utc
from repro.timeutils.timezones import (
    FixedOffset,
    local_date,
    local_hour_of_day,
    local_midnight_utc,
    local_minute_of_hour,
    local_weekday,
)

MYANMAR = FixedOffset(390)   # UTC+06:30
IRAN = FixedOffset(210)      # UTC+03:30
NEPAL = FixedOffset(345)     # UTC+05:45
UTC = FixedOffset(0)
NEW_YORK_STD = FixedOffset(-300)


class TestFixedOffset:
    def test_label_positive_half_hour(self):
        assert MYANMAR.label == "UTC+06:30"

    def test_label_negative(self):
        assert NEW_YORK_STD.label == "UTC-05:00"

    def test_seconds(self):
        assert IRAN.seconds == 12600

    def test_rejects_absurd_offsets(self):
        with pytest.raises(TimeRangeError):
            FixedOffset(15 * 60)


class TestLocalFields:
    def test_midnight_utc_is_midnight_in_utc_zone(self):
        ts = utc(2021, 2, 1)
        assert local_hour_of_day(ts, UTC) == 0
        assert local_minute_of_hour(ts, UTC) == 0

    def test_myanmar_local_midnight(self):
        # Local midnight in Myanmar is 17:30 UTC the previous day.
        ts = utc(2021, 1, 31, 17, 30)
        assert local_hour_of_day(ts, MYANMAR) == 0
        assert local_minute_of_hour(ts, MYANMAR) == 0

    def test_half_hour_offset_shifts_minutes(self):
        # 01:00 UTC is 04:30 in Iran.
        ts = utc(2021, 6, 1, 1, 0)
        assert local_hour_of_day(ts, IRAN) == 4
        assert local_minute_of_hour(ts, IRAN) == 30

    def test_nepal_45_minute_offset(self):
        ts = utc(2021, 6, 1, 0, 0)
        assert local_hour_of_day(ts, NEPAL) == 5
        assert local_minute_of_hour(ts, NEPAL) == 45

    def test_weekday_epoch_thursday(self):
        assert local_weekday(0, UTC) == 3  # 1970-01-01 was a Thursday

    def test_weekday_known_date(self):
        # 2023-09-11 was a Monday.
        assert local_weekday(utc(2023, 9, 11, 12), UTC) == 0

    def test_weekday_changes_across_offset(self):
        # 23:00 UTC Sunday is already Monday in Myanmar.
        ts = utc(2023, 9, 10, 23)
        assert local_weekday(ts, UTC) == 6
        assert local_weekday(ts, MYANMAR) == 0


class TestLocalDate:
    def test_same_local_day_shares_index(self):
        d1 = local_date(utc(2021, 3, 5, 0, 1), UTC)
        d2 = local_date(utc(2021, 3, 5, 23, 59), UTC)
        assert d1 == d2

    def test_offset_moves_day_boundary(self):
        ts = utc(2021, 3, 5, 23)   # already March 6 in Myanmar
        assert local_date(ts, MYANMAR) == local_date(ts, UTC) + 1

    def test_local_midnight_utc(self):
        ts = utc(2021, 3, 5, 12)
        midnight = local_midnight_utc(ts, MYANMAR)
        assert local_hour_of_day(midnight, MYANMAR) == 0
        assert midnight <= ts

    @given(st.integers(min_value=0, max_value=2 * 10**9),
           st.sampled_from([-300, 0, 60, 210, 330, 345, 390, 540]))
    def test_local_date_consistent_with_midnight(self, ts, minutes):
        offset = FixedOffset(minutes)
        midnight = local_midnight_utc(ts, offset)
        assert local_date(midnight, offset) == local_date(ts, offset)
        assert 0 < ts - midnight + 1 <= DAY

    @given(st.integers(min_value=0, max_value=2 * 10**9),
           st.sampled_from([-300, 0, 210, 345, 390]))
    def test_minute_in_range(self, ts, minutes):
        offset = FixedOffset(minutes)
        assert 0 <= local_minute_of_hour(ts, offset) < 60
        assert 0 <= local_hour_of_day(ts, offset) < 24
        assert 0 <= local_weekday(ts, offset) < 7
