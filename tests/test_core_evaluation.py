"""Tests for cross-validation and threshold sweeps."""

import numpy as np
import pytest

from repro.core.classifier import FeatureExtractor, train_classifier
from repro.core.evaluation import cross_validate, threshold_sweep
from repro.errors import ConfigurationError


@pytest.fixture(scope="module")
def data(pipeline_result):
    merged = pipeline_result.merged
    registry = merged.registry
    libdem = {
        (registry.by_name(r.country_name).iso2, r.year):
            r.liberal_democracy
        for r in pipeline_result.vdem}
    extractor = FeatureExtractor(registry, libdem,
                                 pipeline_result.state_shares)
    events = merged.labeled
    features = extractor.extract([e.record for e in events])
    labels = np.array([e.is_shutdown for e in events], dtype=np.int64)
    return features, labels


class TestCrossValidation:
    def test_five_fold_metrics(self, data):
        features, labels = data
        result = cross_validate(features, labels, k=5)
        assert result.k == 5
        assert len(result.fold_metrics) == 5
        assert result.mean("accuracy") > 0.85
        assert result.mean("f1") > 0.7
        assert result.std("accuracy") < 0.1

    def test_folds_are_stratified(self, data):
        features, labels = data
        # Each fold's test set must see both classes, or precision/recall
        # would be degenerate in some folds.
        result = cross_validate(features, labels, k=5)
        for fold in result.fold_metrics:
            assert fold["n"] > 0
            assert 0.0 < fold["recall"] <= 1.0

    def test_rows_render(self, data):
        features, labels = data
        rows = cross_validate(features, labels, k=3).rows()
        assert len(rows) == 4

    def test_validation(self, data):
        features, labels = data
        with pytest.raises(ConfigurationError):
            cross_validate(features, labels, k=1)
        with pytest.raises(ConfigurationError):
            cross_validate(features[:5], labels[:5], k=5)


class TestThresholdSweep:
    def test_recall_monotone_in_threshold(self, data):
        features, labels = data
        model = train_classifier(features, labels).model
        points = threshold_sweep(model, features, labels)
        recalls = [p.recall for p in points]
        assert recalls == sorted(recalls, reverse=True)

    def test_low_threshold_catches_everything(self, data):
        features, labels = data
        model = train_classifier(features, labels).model
        points = threshold_sweep(model, features, labels,
                                 thresholds=[0.05, 0.9])
        assert points[0].recall > 0.95
        assert points[1].precision >= points[0].precision
