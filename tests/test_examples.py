"""Smoke tests: every example script runs to completion.

The cache-dependent examples (full_reproduction, api_monitoring,
case_study_briefs) reuse the repository's ``.cache`` populated by the
session-scoped pipeline fixture, so they finish in seconds.
"""

import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
EXAMPLES = REPO_ROOT / "examples"


def run_example(name: str, timeout: int = 600) -> str:
    process = subprocess.run(
        [sys.executable, str(EXAMPLES / name)],
        capture_output=True, text=True, timeout=timeout,
        cwd=str(REPO_ROOT))
    assert process.returncode == 0, process.stderr[-2000:]
    return process.stdout


class TestExamples:
    def test_quickstart(self):
        output = run_example("quickstart.py")
        assert "recovered the shutdown" in output

    def test_exam_season_forensics(self):
        output = run_example("exam_season_forensics.py")
        assert "fingerprints verified" in output
        assert "starts on the local hour" in output

    def test_coup_blackout_triage(self):
        output = run_example("coup_blackout_triage.py")
        assert "likely-shutdown" in output

    def test_api_monitoring(self, pipeline_result):
        output = run_example("api_monitoring.py")
        assert "alert episodes in window" in output

    def test_case_study_briefs(self, pipeline_result):
        output = run_example("case_study_briefs.py")
        assert output.count("Case study:") == 3

    def test_full_reproduction(self, pipeline_result):
        output = run_example("full_reproduction.py")
        assert "Table 2" in output
        assert "Figure 16" in output
