"""Unit tests for curation internals: clustering, anchoring, windows.

The integration tests exercise these through whole investigations; these
tests pin down the component behaviors directly with synthetic episodes.
"""

import pytest

from repro.ioda.curation import CurationConfig, CurationPipeline
from repro.ioda.platform import IODAPlatform
from repro.signals.alerts import AlertEpisode
from repro.signals.kinds import SignalKind
from repro.timeutils.timestamps import DAY, HOUR, TimeRange
from repro.world.scenario import STUDY_PERIOD


@pytest.fixture(scope="module")
def pipeline(platform):
    return CurationPipeline(platform)


def episode(start, end, depth=1.0, n_bins=None, baseline=100.0):
    if n_bins is None:
        n_bins = max(1, (end - start) // 300)
    return AlertEpisode(
        span=TimeRange(start, end),
        min_value=baseline * (1.0 - depth),
        baseline=baseline,
        n_bins=n_bins)


class TestClustering:
    def test_empty_input(self, pipeline):
        assert pipeline._cluster({kind: [] for kind in SignalKind}) == []

    def test_overlapping_episodes_cluster(self, pipeline):
        episodes = {
            SignalKind.BGP: [episode(0, HOUR)],
            SignalKind.ACTIVE_PROBING: [episode(600, HOUR + 600)],
            SignalKind.TELESCOPE: [],
        }
        candidates = pipeline._cluster(episodes)
        assert len(candidates) == 1
        assert candidates[0].span == TimeRange(0, HOUR + 600)

    def test_distant_episodes_split(self, pipeline):
        gap = pipeline.config.cluster_gap
        episodes = {
            SignalKind.BGP: [episode(0, HOUR),
                             episode(HOUR + gap + 600,
                                     2 * HOUR + gap + 600)],
            SignalKind.ACTIVE_PROBING: [],
            SignalKind.TELESCOPE: [],
        }
        candidates = pipeline._cluster(episodes)
        assert len(candidates) == 2

    def test_chain_extends_cluster(self, pipeline):
        gap = pipeline.config.cluster_gap
        episodes = {
            SignalKind.BGP: [episode(0, HOUR)],
            SignalKind.TELESCOPE: [
                episode(HOUR + gap - 300, HOUR + gap),
                episode(HOUR + 2 * gap - 600, HOUR + 2 * gap)],
            SignalKind.ACTIVE_PROBING: [],
        }
        candidates = pipeline._cluster(episodes)
        assert len(candidates) == 1


class TestAnchoring:
    def test_shallow_flicker_discarded(self, pipeline):
        margin = pipeline.config.anchor_margin
        visible = {
            SignalKind.BGP: [episode(10 * HOUR, 12 * HOUR, depth=1.0)],
            SignalKind.TELESCOPE: [
                episode(10 * HOUR, 12 * HOUR, depth=0.9),
                episode(0, 1800, depth=0.6),  # hours before the anchor
            ],
        }
        anchored = pipeline._anchor_overlapping(visible)
        assert len(anchored[SignalKind.TELESCOPE]) == 1
        assert anchored[SignalKind.TELESCOPE][0].span.start == 10 * HOUR

    def test_signal_with_only_distant_episodes_dropped(self, pipeline):
        visible = {
            SignalKind.BGP: [episode(10 * HOUR, 12 * HOUR, depth=1.0)],
            SignalKind.TELESCOPE: [episode(0, 1800, depth=0.7)],
        }
        anchored = pipeline._anchor_overlapping(visible)
        assert SignalKind.TELESCOPE not in anchored
        assert SignalKind.BGP in anchored

    def test_empty(self, pipeline):
        assert pipeline._anchor_overlapping({}) == {}

    def test_within_margin_kept(self, pipeline):
        margin = pipeline.config.anchor_margin
        visible = {
            SignalKind.BGP: [episode(10 * HOUR, 12 * HOUR, depth=1.0)],
            SignalKind.ACTIVE_PROBING: [
                episode(12 * HOUR + margin - 300,
                        12 * HOUR + margin + 300, depth=0.5)],
        }
        anchored = pipeline._anchor_overlapping(visible)
        assert SignalKind.ACTIVE_PROBING in anchored


class TestWindowMerging:
    def test_overlapping_triggers_merge(self, pipeline):
        spans = [TimeRange(STUDY_PERIOD.start + 10 * DAY,
                           STUDY_PERIOD.start + 10 * DAY + HOUR),
                 TimeRange(STUDY_PERIOD.start + 10 * DAY + 2 * HOUR,
                           STUDY_PERIOD.start + 10 * DAY + 3 * HOUR)]
        merged = pipeline._merge_windows(spans, STUDY_PERIOD)
        assert len(merged) == 1

    def test_distant_triggers_stay_separate(self, pipeline):
        spans = [TimeRange(STUDY_PERIOD.start + 10 * DAY,
                           STUDY_PERIOD.start + 10 * DAY + HOUR),
                 TimeRange(STUDY_PERIOD.start + 60 * DAY,
                           STUDY_PERIOD.start + 60 * DAY + HOUR)]
        merged = pipeline._merge_windows(spans, STUDY_PERIOD)
        assert len(merged) == 2

    def test_lead_clipped_at_period_edge(self, pipeline):
        spans = [TimeRange(STUDY_PERIOD.start + HOUR,
                           STUDY_PERIOD.start + 2 * HOUR)]
        merged = pipeline._merge_windows(spans, STUDY_PERIOD)
        lead = pipeline.config.window_lead
        assert merged[0].start >= STUDY_PERIOD.start - lead

    def test_windows_include_history_lead(self, pipeline):
        span = TimeRange(STUDY_PERIOD.start + 30 * DAY,
                         STUDY_PERIOD.start + 30 * DAY + HOUR)
        merged = pipeline._merge_windows([span], STUDY_PERIOD)
        assert merged[0].start == span.start - pipeline.config.window_lead
        assert merged[0].end == span.end + pipeline.config.window_tail


class TestControlGroup:
    def test_controls_exclude_home_region(self, pipeline, scenario):
        controls = pipeline._control_countries("SY")
        assert "SY" not in controls
        home_region = scenario.registry.get("SY").region
        regions = [scenario.registry.get(c).region for c in controls]
        assert home_region not in regions
        # One control per region, all distinct.
        assert len(set(regions)) == len(regions)

    def test_control_count(self, pipeline):
        controls = pipeline._control_countries("SY")
        assert len(controls) == pipeline.config.n_controls
