"""Tests for curated outage records and the dashboard."""

import pytest

from repro.errors import CurationError
from repro.ioda.dashboard import Dashboard, ioda_url
from repro.ioda.records import ConfirmationStatus, OutageRecord
from repro.signals.entities import Entity, EntityScope
from repro.signals.kinds import SignalKind
from repro.timeutils.timestamps import DAY, HOUR, TimeRange, utc
from repro.world.scenario import STUDY_PERIOD


def make_record(**overrides):
    fields = dict(
        record_id=1,
        country_iso2="SD",
        span=TimeRange(utc(2022, 6, 30, 5, 30), utc(2022, 6, 30, 22, 40)),
        scope=EntityScope.COUNTRY,
        auto_alerts={SignalKind.BGP: True,
                     SignalKind.ACTIVE_PROBING: True,
                     SignalKind.TELESCOPE: False},
        human_visible={SignalKind.BGP: True,
                       SignalKind.ACTIVE_PROBING: True,
                       SignalKind.TELESCOPE: True},
        ioda_url="https://ioda.example.org/dashboard/country/SD",
        cause="Government-ordered",
        confirmation=ConfirmationStatus.CONFIRMED,
        more_info=("Protests occurred; https://news.example.org/sd/1",),
    )
    fields.update(overrides)
    return OutageRecord(**fields)


class TestOutageRecord:
    def test_table1_example_roundtrip(self):
        """The record mirrors the paper's Table 1 Sudan example."""
        record = make_record()
        row = record.as_row()
        assert row["Start time"] == "2022-06-30 05:30:00"
        assert row["End time"] == "2022-06-30 22:40:00"
        assert row["Country"] == "SD"
        assert row["IODA BGP Auto Alert"] == "TRUE"
        assert row["IODA Telescope Auto Alert"] == "FALSE"
        assert row["IODA Telescope visible by human"] == "TRUE"
        assert row["Scope"] == "Country"
        assert row["Cause"] == "Government-ordered"
        assert row["Confirmation Status"] == "Confirmed"

    def test_signal_flag_completeness_enforced(self):
        with pytest.raises(CurationError):
            make_record(auto_alerts={SignalKind.BGP: True})

    def test_invisible_record_rejected(self):
        with pytest.raises(CurationError):
            make_record(human_visible={k: False for k in SignalKind})

    def test_visibility_accessors(self):
        record = make_record()
        assert record.n_signals_visible == 3
        assert record.visible_in_all_signals
        partial = make_record(human_visible={
            SignalKind.BGP: True,
            SignalKind.ACTIVE_PROBING: False,
            SignalKind.TELESCOPE: False})
        assert partial.n_signals_visible == 1
        assert not partial.visible_in_all_signals

    def test_cause_shutdown_detection(self):
        assert make_record().is_cause_shutdown()
        assert make_record(cause="Exam-related").is_cause_shutdown()
        assert not make_record(cause="Cable cut").is_cause_shutdown()
        assert not make_record(cause=None).is_cause_shutdown()

    def test_duration(self):
        assert make_record().duration_hours == pytest.approx(17.0 + 1 / 6)


class TestDashboard:
    def test_ioda_url_shape(self):
        url = ioda_url(Entity.country("SD"), TimeRange(100, 200))
        assert "country/SD" in url
        assert "from=100" in url and "until=200" in url

    def test_entries_listed_for_real_event(self, platform, scenario):
        event = next(e for e in scenario.shutdowns
                     if e.country_iso2 == "SY"
                     and STUDY_PERIOD.contains(e.span.start))
        window = TimeRange(event.span.start - DAY,
                           event.span.end + 6 * HOUR)
        dashboard = Dashboard(platform)
        entries = dashboard.entries(Entity.country("SY"), window)
        assert entries
        signals = {entry.signal for entry in entries}
        assert SignalKind.BGP in signals
        # Entries ordered by start time.
        starts = [e.episode.span.start for e in entries]
        assert starts == sorted(starts)

    def test_quiet_country_few_entries(self, platform):
        window = TimeRange(STUDY_PERIOD.start, STUDY_PERIOD.start + DAY)
        dashboard = Dashboard(platform)
        entries = dashboard.entries(Entity.country("JP"), window)
        bgp_entries = [e for e in entries if e.signal is SignalKind.BGP]
        assert not bgp_entries
