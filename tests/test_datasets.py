"""Tests for the auxiliary dataset emitters."""

import numpy as np
import pytest

from repro.datasets.coups import CoupDataset
from repro.datasets.datareportal import DataReportalDataset
from repro.datasets.elections import ELECTION_YEARS, ElectionDataset
from repro.datasets.protests import PROTEST_DATA_END, ProtestDataset
from repro.datasets.vdem import VDemDataset
from repro.datasets.worldbank import WorldBankDataset
from repro.timeutils.timestamps import DAY, utc
from repro.world.events import EventKind


@pytest.fixture(scope="module")
def profiles(scenario):
    return scenario.profiles


class TestVDem:
    def test_covers_all_country_years(self, scenario, registry, profiles):
        dataset = VDemDataset.from_profiles(1, registry, profiles)
        assert len(dataset) == len(profiles)

    def test_values_track_ground_truth(self, scenario, registry, profiles):
        dataset = VDemDataset.from_profiles(1, registry, profiles)
        for record in dataset:
            iso2 = registry.by_name(record.country_name).iso2
            truth = profiles[(iso2, record.year)]
            assert record.liberal_democracy == pytest.approx(
                truth.liberal_democracy, abs=0.05)

    def test_zero_military_power_survives_noise(self, scenario, registry,
                                                profiles):
        dataset = VDemDataset.from_profiles(1, registry, profiles)
        zero_truth = {(iso2, year)
                      for (iso2, year), p in profiles.items()
                      if p.military_power == 0.0}
        assert zero_truth
        for record in dataset:
            iso2 = registry.by_name(record.country_name).iso2
            if (iso2, record.year) in zero_truth:
                assert record.military_power == 0.0

    def test_name_stable_within_dataset(self, registry, profiles):
        dataset = VDemDataset.from_profiles(1, registry, profiles)
        names = {}
        for record in dataset:
            iso2 = registry.by_name(record.country_name).iso2
            names.setdefault(iso2, set()).add(record.country_name)
        assert all(len(variants) == 1 for variants in names.values())


class TestWorldBank:
    def test_missing_values_present_but_rare(self, registry, profiles):
        dataset = WorldBankDataset.from_profiles(1, registry, profiles,
                                                 missing_rate=0.05)
        missing = sum(1 for r in dataset if r.gdp_per_capita_ppp is None)
        assert 0 < missing < 0.15 * len(dataset)

    def test_broadband_units_per_100(self, registry, profiles):
        dataset = WorldBankDataset.from_profiles(1, registry, profiles)
        values = [r.broadband_per_100 for r in dataset
                  if r.broadband_per_100 is not None]
        assert max(values) > 1.5  # clearly not a fraction


class TestEventDatasets:
    def test_coups_match_ground_truth_count(self, scenario, registry):
        dataset = CoupDataset.from_events(1, registry, scenario.events)
        truth = [e for e in scenario.events if e.kind is EventKind.COUP]
        assert len(dataset) == len(truth)

    def test_elections_limited_to_collection_years(self, scenario,
                                                   registry):
        import time
        dataset = ElectionDataset.from_events(1, registry, scenario.events)
        assert len(dataset) > 0
        for record in dataset:
            year = time.gmtime(record.day * DAY).tm_year
            assert year in ELECTION_YEARS

    def test_protests_end_in_2019(self, scenario, registry):
        dataset = ProtestDataset.from_events(1, registry, scenario.events)
        assert len(dataset) > 0
        assert all(r.day < PROTEST_DATA_END for r in dataset)
        assert PROTEST_DATA_END == utc(2020, 1, 1) // DAY

    def test_protest_coverage_incomplete(self, scenario, registry):
        full = ProtestDataset.from_events(1, registry, scenario.events,
                                          coverage=1.0)
        partial = ProtestDataset.from_events(1, registry, scenario.events,
                                             coverage=0.5)
        assert len(partial) < 0.7 * len(full)


class TestDataReportal:
    def test_users_scale_with_population(self, scenario, registry,
                                         profiles):
        dataset = DataReportalDataset.from_profiles(1, registry, profiles)
        by_country = {}
        for record in dataset:
            iso2 = registry.by_name(record.country_name).iso2
            if record.year == 2019:
                by_country[iso2] = record.users_millions
        assert by_country["IN"] > 50 * by_country["TG"]

    def test_billion_users_headline(self, pipeline_result):
        """The paper: shutdown countries cover >1B Internet users.  Our
        world must be in the same regime (hundreds of millions+)."""
        merged = pipeline_result.merged
        registry = merged.registry
        users = {}
        for record in pipeline_result.datareportal:
            iso2 = registry.by_name(record.country_name).iso2
            if record.year == 2021:
                users[iso2] = record.users_millions
        total = sum(users.get(iso2, 0.0)
                    for iso2 in merged.shutdown_countries())
        assert total > 200.0
