"""Tests for the country registry and name standardization."""

import pytest
from hypothesis import given, strategies as st

from repro.countries.data import COUNTRY_ROWS
from repro.countries.names import normalize_name
from repro.countries.registry import Archetype, CountryRegistry, \
    default_registry
from repro.errors import CountryLookupError


class TestNormalizeName:
    @pytest.mark.parametrize("a, b", [
        ("Côte d'Ivoire", "Cote d'Ivoire"),
        ("Timor-Leste", "Timor Leste"),
        ("Guinea-Bissau", "Guinea Bissau"),
        ("TOGO", "togo"),
        ("Bosnia & Herzegovina", "Bosnia and Herzegovina"),
    ])
    def test_variants_agree(self, a, b):
        assert normalize_name(a) == normalize_name(b)

    @pytest.mark.parametrize("a, b", [
        ("North Korea", "South Korea"),
        ("Congo", "DR Congo"),
        ("Niger", "Nigeria"),
        ("Guinea", "Guinea-Bissau"),
    ])
    def test_distinct_countries_stay_distinct(self, a, b):
        assert normalize_name(a) != normalize_name(b)

    def test_idempotent(self):
        once = normalize_name("Venezuela, Bolivarian Republic of")
        assert normalize_name(once) == once

    @given(st.text(min_size=1, max_size=80))
    def test_never_crashes_and_is_idempotent(self, text):
        key = normalize_name(text)
        assert normalize_name(key) == key


class TestRegistry:
    def test_size_covers_paper_scale(self, registry):
        # The paper's dataset spans 155 countries; ours must cover that.
        assert len(registry) >= 155

    def test_lookup_by_iso(self, registry):
        assert registry.get("sy").name == "Syria"

    def test_lookup_by_name(self, registry):
        assert registry.by_name("Syrian Arab Republic").iso2 == "SY"

    def test_lookup_by_alias_rename(self, registry):
        assert registry.by_name("Swaziland").iso2 == "SZ"
        assert registry.by_name("Burma").iso2 == "MM"

    def test_lookup_dispatches_iso_or_name(self, registry):
        assert registry.lookup("IQ").iso2 == "IQ"
        assert registry.lookup("Ivory Coast").iso2 == "CI"

    def test_unknown_name_raises(self, registry):
        with pytest.raises(CountryLookupError):
            registry.by_name("Atlantis")

    def test_unknown_iso_raises(self, registry):
        with pytest.raises(CountryLookupError):
            registry.get("XX")

    def test_contains(self, registry):
        assert "SY" in registry
        assert "Atlantis" not in registry

    def test_every_alias_resolves_to_its_country(self, registry):
        for country in registry:
            for name in country.all_names():
                assert registry.by_name(name) is country

    def test_no_alias_collisions_in_table(self):
        # Registry construction raises on collisions; building succeeds.
        assert CountryRegistry.from_rows(COUNTRY_ROWS)

    def test_half_hour_offsets_present(self, registry):
        assert registry.get("MM").utc_offset.minutes == 390
        assert registry.get("IR").utc_offset.minutes == 210
        assert registry.get("NP").utc_offset.minutes == 345

    def test_friday_weekend_countries(self, registry):
        for iso2 in ("SY", "IQ", "IR", "SD", "DZ"):
            assert registry.get(iso2).friday_weekend, iso2
        assert not registry.get("US").friday_weekend

    def test_paper_top_countries_have_matching_archetypes(self, registry):
        assert registry.get("SY").archetype is Archetype.EXAM
        assert registry.get("IQ").archetype is Archetype.EXAM
        assert registry.get("MM").archetype is Archetype.COUP
        assert registry.get("TG").archetype is Archetype.FRAGILE
        assert registry.get("IN").archetype is Archetype.SUBNATIONAL

    def test_hints_in_unit_range(self, registry):
        for country in registry:
            for hint in (country.autocracy_hint, country.income_hint,
                         country.state_isp_hint, country.fragility_hint):
                assert 0.0 <= hint <= 1.0

    def test_default_registry_cached(self):
        assert default_registry() is default_registry()

    def test_iso3_roundtrip(self, registry):
        for country in registry:
            assert len(country.iso3) == 3
            assert registry.by_iso3(country.iso3) is country

    def test_iso3_codes_unique(self, registry):
        codes = [c.iso3 for c in registry]
        assert len(codes) == len(set(codes))

    def test_lookup_accepts_iso3(self, registry):
        assert registry.lookup("SYR").iso2 == "SY"
        assert registry.lookup("mmr").iso2 == "MM"

    def test_known_iso3_values(self, registry):
        assert registry.get("CD").iso3 == "COD"
        assert registry.get("DE").iso3 == "DEU"
        assert registry.get("KP").iso3 == "PRK"
