"""Tests for the scenario auditor."""

import pytest

from repro.world.scenario import ScenarioConfig, ScenarioGenerator
from repro.world.outages import OutageRates
from repro.world.validation import ScenarioAuditor


class TestScenarioAuditor:
    def test_canonical_scenario_passes_every_check(self, scenario):
        auditor = ScenarioAuditor(scenario)
        findings = auditor.audit()
        failed = [f for f in findings if not f.passed]
        assert not failed, "\n".join(str(f) for f in failed)
        assert auditor.passed()

    def test_findings_render(self, scenario):
        findings = ScenarioAuditor(scenario).audit()
        assert len(findings) == 8
        for finding in findings:
            text = str(finding)
            assert text.startswith("[PASS]") or text.startswith("[FAIL]")

    def test_degenerate_scenario_flagged(self):
        """A world with almost no outages must fail the volume check."""
        config = ScenarioConfig(
            seed=5,
            outage_rates=OutageRates(base_rate=0.001,
                                     fragility_rate=0.001))
        scenario = ScenarioGenerator(config).generate()
        auditor = ScenarioAuditor(scenario)
        findings = {f.check: f for f in auditor.audit()}
        assert not findings["outage volume"].passed
        assert not auditor.passed()

    def test_different_seeds_stay_in_regime(self):
        """The calibration must not be a single-seed accident."""
        for seed in (7, 99):
            scenario = ScenarioGenerator(ScenarioConfig(seed=seed)).generate()
            findings = {f.check: f
                        for f in ScenarioAuditor(scenario).audit()}
            assert findings["shutdown volume"].passed, seed
            assert findings["outage volume"].passed, seed
            assert findings["on-the-hour starts"].passed, seed
