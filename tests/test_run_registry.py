"""The cross-run registry: content-addressed run slots and ``repro runs``.

The acceptance bar:

- registering a canonical run round-trips: the journal lands verbatim
  in its content-addressed slot and ``meta.json`` carries the health
  grade, stats, config, and event/span/heartbeat counts;
- registration is idempotent — the same journal bytes always resolve
  to the same slot;
- runs resolve by full ID, unique ID prefix, or name (newest wins),
  and the CLI accepts run IDs anywhere a journal path is accepted,
  exiting 2 (not a traceback) on unknown tokens.
"""

import json

import pytest

import repro.api as api
from repro.cli import main
from repro.obs import RunRecord, RunRegistry, read_journal, run_id_for
from repro.timeutils.timestamps import TimeRange, utc
from repro.world.scenario import ScenarioConfig

SMALL_CONFIG = ScenarioConfig(seed=7, years=(2018,))
SMALL_PERIOD = TimeRange(utc(2018, 1, 1), utc(2018, 7, 1))


def synthetic_journal(path, *, ts=1000.0, seconds=2.0, grade="pass",
                      salt=""):
    """A minimal but well-formed journal file; returns its path."""
    events = [
        {"type": "run_start", "version": 1, "ts": ts},
        {"type": "span", "span_id": 1, "parent_id": None, "name": "run",
         "start": 0.0, "duration": seconds, "worker": "1/main",
         "attrs": {"salt": salt}},
        {"type": "heartbeat", "seq": 1, "final": True, "pid": 1},
        {"type": "health", "grade": grade,
         "stats": {"perf.total_seconds": seconds,
                   "fidelity.match_rate": 0.5}},
        {"type": "run_end", "ts": ts + seconds},
    ]
    path.write_text(
        "".join(json.dumps(e, sort_keys=True) + "\n" for e in events),
        encoding="utf-8")
    return path


@pytest.fixture
def registry(tmp_path):
    return RunRegistry(tmp_path / "runs")


class TestRunId:
    def test_deterministic_16_hex(self):
        digest = run_id_for(b"journal bytes")
        assert digest == run_id_for(b"journal bytes")
        assert len(digest) == 16
        assert set(digest) <= set("0123456789abcdef")

    def test_different_bytes_different_id(self):
        assert run_id_for(b"run a") != run_id_for(b"run b")


class TestRegister:
    def test_round_trip(self, tmp_path, registry):
        source = synthetic_journal(tmp_path / "run.jsonl",
                                   ts=1000.0, seconds=2.0)
        data = source.read_bytes()
        record = registry.register(source, name="canonical",
                                   config={"seed": 7},
                                   fingerprint="abc123")
        assert record.run_id == run_id_for(data)
        assert record.name == "canonical"
        assert record.grade == "pass"
        assert record.config == {"seed": 7}
        assert record.fingerprint == "abc123"
        assert record.stats["perf.total_seconds"] == 2.0
        assert record.n_events == 5
        assert record.n_spans == 1
        assert record.n_heartbeats == 1
        assert record.run_seconds == 2.0
        assert record.created == "1970-01-01T00:16:40Z"
        # The journal lands verbatim; the source survives (copy mode).
        assert record.journal_path.read_bytes() == data
        assert source.exists()
        # meta.json round-trips through from_dict.
        meta = json.loads((record.path / "meta.json").read_text())
        assert RunRecord.from_dict(meta, path=record.path) == record

    def test_idempotent(self, tmp_path, registry):
        source = tmp_path / "run.jsonl"
        synthetic_journal(source)
        first = registry.register(source, name="one")
        again = registry.register(source, name="ignored-second-name")
        assert again.run_id == first.run_id
        assert again.name == "one"  # re-registration keeps the record
        assert len(registry.records()) == 1

    def test_move_relocates_the_source(self, tmp_path, registry):
        source = synthetic_journal(tmp_path / "pending.jsonl")
        data = source.read_bytes()
        record = registry.register(source, move=True)
        assert not source.exists()
        assert record.journal_path.read_bytes() == data

    def test_default_name_is_id_prefix(self, tmp_path, registry):
        source = tmp_path / "run.jsonl"
        synthetic_journal(source)
        record = registry.register(source)
        assert record.name == record.run_id[:8]

    def test_failing_grade_is_preserved(self, tmp_path, registry):
        source = tmp_path / "run.jsonl"
        synthetic_journal(source, grade="fail")
        assert registry.register(source).grade == "fail"


class TestResolve:
    def _register_two(self, tmp_path, registry):
        a = registry.register(
            synthetic_journal(tmp_path / "a.jsonl", ts=1000.0, salt="a"),
            name="alpha")
        b = registry.register(
            synthetic_journal(tmp_path / "b.jsonl", ts=2000.0, salt="b"),
            name="beta")
        return a, b

    def test_full_id_prefix_and_name(self, tmp_path, registry):
        a, b = self._register_two(tmp_path, registry)
        assert registry.get(a.run_id).run_id == a.run_id
        assert registry.get(a.run_id[:6]).run_id == a.run_id
        assert registry.get("beta").run_id == b.run_id

    def test_name_resolves_to_newest(self, tmp_path, registry):
        registry.register(
            synthetic_journal(tmp_path / "old.jsonl", ts=1000.0,
                              salt="old"), name="nightly")
        newer = registry.register(
            synthetic_journal(tmp_path / "new.jsonl", ts=5000.0,
                              salt="new"), name="nightly")
        assert registry.get("nightly").run_id == newer.run_id

    def test_ambiguous_prefix_raises(self, tmp_path, registry):
        self._register_two(tmp_path, registry)
        # The empty prefix matches every run.
        with pytest.raises(KeyError, match="ambiguous"):
            registry.get("")

    def test_unknown_token_raises(self, registry):
        with pytest.raises(KeyError, match="no run"):
            registry.get("nope")

    def test_records_sorted_oldest_first(self, tmp_path, registry):
        self._register_two(tmp_path, registry)
        created = [r.created for r in registry.records()]
        assert created == sorted(created)


class TestViews:
    def test_empty_registry_rows(self, registry):
        rows = registry.rows()
        assert len(rows) == 1 and "no runs registered" in rows[0]

    def test_trend_table_rows(self, tmp_path, registry):
        registry.register(
            synthetic_journal(tmp_path / "a.jsonl", ts=1000.0, salt="a"),
            name="alpha")
        text = "\n".join(registry.rows())
        assert "alpha" in text

    def test_as_baseline(self, tmp_path, registry):
        source = tmp_path / "run.jsonl"
        synthetic_journal(source, seconds=2.0)
        baseline = registry.register(source, name="base").as_baseline()
        assert baseline.name == "base"
        assert baseline.health_grade == "pass"
        assert baseline.perf["perf.total_seconds"] == 2.0
        assert baseline.fidelity["fidelity.match_rate"] == 0.5
        assert baseline.created == "1970-01-01T00:16:40Z"

    def test_show_rows(self, tmp_path, registry):
        source = tmp_path / "run.jsonl"
        synthetic_journal(source)
        record = registry.register(source, name="showme",
                                   fingerprint="deadbeef")
        text = "\n".join(record.rows())
        assert record.run_id in text
        assert "showme" in text
        assert "deadbeef" in text
        assert "1 heartbeats" in text


class TestApiIntegration:
    def test_runs_dir_registers_the_run(self, tmp_path):
        root = tmp_path / "runs"
        result = api.run(scenario_config=SMALL_CONFIG,
                         study_period=SMALL_PERIOD,
                         runs_dir=root, run_name="smoke")
        assert result.run_id is not None
        assert result.run_dir == root / result.run_id
        assert result.journal_path == result.run_dir / "journal.jsonl"
        assert result.journal_path.exists()
        # The auto-created pending journal was moved, not left behind.
        assert not list(root.glob("pending-*"))
        record = RunRegistry(root).get(result.run_id)
        assert record.name == "smoke"
        assert record.config["seed"] == SMALL_CONFIG.seed
        assert record.fingerprint
        assert record.grade == result.health.grade
        events = read_journal(result.journal_path)
        assert any(e["type"] == "health" for e in events)


class TestCli:
    @pytest.fixture
    def populated(self, tmp_path):
        root = tmp_path / "runs"
        source = tmp_path / "canonical.jsonl"
        synthetic_journal(source)
        record = RunRegistry(root).register(source, name="canonical")
        return root, record

    def test_runs_list(self, populated, capsys):
        root, _ = populated
        assert main(["--runs-dir", str(root), "runs", "list"]) == 0
        assert "canonical" in capsys.readouterr().out

    def test_runs_show_by_prefix(self, populated, capsys):
        root, record = populated
        assert main(["--runs-dir", str(root), "runs", "show",
                     record.run_id[:6]]) == 0
        assert record.run_id in capsys.readouterr().out

    def test_runs_register(self, populated, tmp_path, capsys):
        root, _ = populated
        source = tmp_path / "other.jsonl"
        synthetic_journal(source, ts=3000.0, salt="other")
        assert main(["--runs-dir", str(root), "runs", "register",
                     str(source), "--name", "other"]) == 0
        assert RunRegistry(root).get("other").name == "other"

    def test_runs_self_diff_is_clean(self, populated, capsys):
        root, record = populated
        assert main(["--runs-dir", str(root), "runs", "diff",
                     record.run_id, record.run_id]) == 0

    def test_trace_summarize_accepts_run_id(self, populated, capsys):
        root, record = populated
        assert main(["--runs-dir", str(root), "trace", "summarize",
                     record.run_id]) == 0
        assert "span" in capsys.readouterr().out

    def test_health_accepts_run_id(self, populated, capsys):
        root, record = populated
        assert main(["--runs-dir", str(root), "health",
                     record.run_id]) == 0

    def test_unknown_run_exits_2(self, populated, capsys):
        root, _ = populated
        assert main(["--runs-dir", str(root), "runs", "show",
                     "ffffffffffffffff"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_missing_journal_path_exits_2(self, tmp_path, capsys):
        assert main(["--runs-dir", str(tmp_path / "runs"), "trace",
                     "summarize", "no-such-run"]) == 2
        err = capsys.readouterr().err
        assert "Traceback" not in err
