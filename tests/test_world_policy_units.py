"""Unit tests for shutdown-policy internals."""

from collections import Counter

import pytest

from repro.countries.registry import Archetype
from repro.signals.entities import EntityScope
from repro.timeutils.timestamps import DAY
from repro.timeutils.timezones import local_hour_of_day
from repro.world.disruptions import Cause
from repro.world.events import EventKind
from repro.world.scenario import KIO_PERIOD, STUDY_PERIOD


class TestExamSeries:
    def test_series_ids_group_waves(self, scenario):
        exam_events = [d for d in scenario.shutdowns
                       if d.cause is Cause.EXAM]
        assert exam_events
        by_series = Counter(d.series_id for d in exam_events)
        # Main waves are longer than makeup waves.
        main = [sid for sid in by_series if not sid.endswith("-makeup")]
        makeup = [sid for sid in by_series if sid.endswith("-makeup")]
        assert main
        assert makeup
        assert max(by_series[sid] for sid in main) > \
            max(by_series[sid] for sid in makeup)

    def test_only_exam_archetype_countries(self, scenario, registry):
        for event in scenario.shutdowns:
            if event.cause is Cause.EXAM:
                assert registry.get(event.country_iso2).archetype is \
                    Archetype.EXAM

    def test_waves_share_start_hour_within_series(self, scenario,
                                                  registry):
        exam_events = {}
        for event in scenario.shutdowns:
            if event.cause is Cause.EXAM and event.series_id:
                exam_events.setdefault(
                    event.series_id.removesuffix("-makeup"),
                    []).append(event)
        for series_id, events in exam_events.items():
            offsets = {
                local_hour_of_day(
                    e.span.start,
                    registry.get(e.country_iso2).utc_offset)
                for e in events}
            assert len(offsets) == 1, series_id


class TestTriggers:
    def test_triggered_shutdowns_reference_real_events(self, scenario):
        event_ids = {e.event_id for e in scenario.events}
        for disruption in scenario.shutdowns:
            if disruption.trigger_event_id is not None:
                assert disruption.trigger_event_id in event_ids

    def test_election_blackouts_start_on_election_day(self, scenario,
                                                      registry):
        events_by_id = {e.event_id: e for e in scenario.events}
        for disruption in scenario.shutdowns:
            if disruption.series_id and "election" in disruption.series_id:
                trigger = events_by_id[disruption.trigger_event_id]
                assert trigger.kind is EventKind.ELECTION
                # Blackout begins at the local midnight of election day.
                assert disruption.span.start == trigger.day_start_utc

    def test_protest_responses_same_local_day(self, scenario):
        events_by_id = {e.event_id: e for e in scenario.events}
        for disruption in scenario.shutdowns:
            if disruption.series_id and "protest" in disruption.series_id:
                trigger = events_by_id[disruption.trigger_event_id]
                assert trigger.kind is EventKind.PROTEST
                assert trigger.day_start_utc <= disruption.span.start \
                    < trigger.day_start_utc + DAY


class TestRestrictionMix:
    def test_soft_restrictions_concentrate_in_autocracies(self, scenario,
                                                          registry):
        by_archetype = Counter(
            registry.get(e.country_iso2).archetype
            for e in scenario.restrictions)
        autocratic = sum(
            count for archetype, count in by_archetype.items()
            if archetype in (Archetype.EXAM, Archetype.COUP,
                             Archetype.AUTOCRACY, Archetype.ELECTION,
                             Archetype.PROTEST))
        assert autocratic > 0.6 * sum(by_archetype.values())

    def test_some_shutdowns_carry_extra_restrictions(self, scenario):
        with_bans = [d for d in scenario.shutdowns
                     if "service-based" in d.restrictions]
        assert with_bans

    def test_kio_period_covers_all_generated_years(self, scenario):
        for event in scenario.shutdowns:
            if event.scope is EntityScope.COUNTRY:
                assert event.span.start >= KIO_PERIOD.start
