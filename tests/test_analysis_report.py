"""Tests for the EXPERIMENTS.md report builder."""

import pytest

from repro.analysis.report import build_report, render_markdown


@pytest.fixture(scope="module")
def rows(pipeline_result):
    return build_report(pipeline_result)


class TestBuildReport:
    def test_covers_every_experiment(self, rows):
        experiments = {row.experiment for row in rows}
        expected = {"Fig 2", "Table 2", "Table 3", "Fig 4", "Fig 5",
                    "Fig 6", "Fig 7", "Fig 8", "Fig 9", "Table 4",
                    "Fig 10", "Fig 11", "Fig 12", "Fig 13", "Fig 14",
                    "Fig 15", "Fig 16"}
        assert expected <= experiments

    def test_every_row_has_both_values(self, rows):
        for row in rows:
            assert row.paper.strip()
            assert row.reproduced.strip()

    def test_markdown_renders_table(self, rows):
        text = render_markdown(rows, seed=2023)
        assert text.startswith("# EXPERIMENTS")
        assert "| Experiment | Statistic | Paper | Reproduction |" in text
        assert text.count("|") > 4 * len(rows)
        assert "seed 2023" in text

    def test_row_count_matches_table(self, rows):
        text = render_markdown(rows, seed=2023)
        table_lines = [line for line in text.splitlines()
                       if line.startswith("| ")
                       and not line.startswith("| Experiment")
                       and not line.startswith("|---")]
        assert len(table_lines) == len(rows)
