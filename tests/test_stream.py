"""Streaming detection and the api.stream surface.

The load-bearing claim of :mod:`repro.stream` is **byte-identity**: a
run streamed bin-by-bin under an advancing watermark — however the bins
are chunked, in whatever order they arrive within a watermark step, on
any backend — finalizes to exactly the records a batch
:func:`repro.api.run` produces.  These tests assert that on the
canonical scenario (the acceptance bar) and probe the contract edges:
out-of-order and duplicate pushes, conflicting values, regressing
watermarks, bins missing under an advanced watermark, windows that open
and close within one advance, and fault-injected streams that recover.
"""

import json

import pytest

import repro.api as api
from repro.errors import CursorError, StreamError
from repro.io import record_to_dict
from repro.timeutils.timestamps import TimeRange, utc
from repro.world.scenario import ScenarioConfig

from tests.conftest import CANONICAL_SEED

SMALL_CONFIG = ScenarioConfig(seed=7, years=(2018,))
SMALL_PERIOD = TimeRange(utc(2018, 1, 1), utc(2018, 5, 1))
WEEK = 7 * 86400


def record_bytes(records):
    return json.dumps([record_to_dict(r) for r in records],
                      sort_keys=True)


def small_stream(**kwargs):
    return api.stream(scenario_config=SMALL_CONFIG,
                      study_period=SMALL_PERIOD, **kwargs)


@pytest.fixture(scope="module")
def batch_small():
    return api.run(scenario_config=SMALL_CONFIG,
                   study_period=SMALL_PERIOD, backend="serial")


@pytest.fixture(scope="module")
def batch_small_bytes(batch_small):
    return record_bytes(batch_small.curated_records)


class TestCanonicalEquivalence:
    """finalize() ≡ run() on the canonical scenario, every backend."""

    @pytest.mark.parametrize("backend,workers", [
        ("serial", 1), ("thread", 4), ("process", 4)])
    def test_stream_matches_batch(self, pipeline_result, backend,
                                  workers):
        session = api.stream(seed=CANONICAL_SEED, backend=backend,
                             workers=workers)
        result = session.finalize()
        assert len(result.curated_records) == 1081
        assert record_bytes(result.curated_records) \
            == record_bytes(pipeline_result.curated_records)

    def test_stats_and_health_populated(self, pipeline_result):
        result = api.stream(seed=CANONICAL_SEED).finalize()
        assert result.stats.n_records == 1081
        assert [s.name for s in result.stats.stages] == [
            "scenario", "curate", "kio", "merge", "datasets"]
        assert result.health.grade in ("pass", "warn", "fail")
        # Fidelity exact: the streamed merge reproduces the batch one.
        assert len(result.merged.labeled) \
            == len(pipeline_result.merged.labeled)


class TestChunkingInvariance:
    @pytest.mark.parametrize("step", [5 * 86400, 17 * 86400 + 3600])
    def test_any_step_is_byte_identical(self, batch_small_bytes, step):
        session = small_stream()
        for _ in session.replay(step):
            pass
        result = session.finalize()
        assert record_bytes(result.curated_records) == batch_small_bytes

    def test_single_giant_advance(self, batch_small_bytes):
        # Every window opens and closes within one advance: the
        # lifecycle synthesizes the opens, the records stay identical.
        session = small_stream()
        events = next(iter(session.replay(10 * 365 * 86400)))
        result = session.finalize()
        assert record_bytes(result.curated_records) == batch_small_bytes
        opened = [e.key for e in events if e.state == "open"]
        closed = [e.key for e in events if e.state == "close"]
        assert opened and sorted(opened) == sorted(closed)

    def test_partial_replay_then_finalize(self, batch_small_bytes):
        session = small_stream()
        next(iter(session.replay(WEEK)))  # abandon the replay early
        result = session.finalize()      # finalize ingests the rest
        assert record_bytes(result.curated_records) == batch_small_bytes


class TestBackendsSmall:
    @pytest.mark.parametrize("backend", ["thread", "process"])
    def test_parallel_backends_match_serial(self, batch_small_bytes,
                                            backend):
        session = small_stream(backend=backend, workers=3)
        for _ in session.replay(4 * WEEK):
            pass
        result = session.finalize()
        assert record_bytes(result.curated_records) == batch_small_bytes


class TestPushContract:
    def test_out_of_order_within_watermark(self, batch_small_bytes):
        # Bins may arrive in any order as long as they precede the
        # watermark that consumes them.
        session = small_stream()
        for batch in session._source.batches(2 * WEEK):
            session.push(sorted(batch.bins, key=lambda b: -b.time))
            session.advance_watermark(batch.watermark)
        result = session.finalize()
        assert record_bytes(result.curated_records) == batch_small_bytes

    def test_duplicate_pushes_are_idempotent(self, batch_small_bytes):
        session = small_stream()
        for batch in session._source.batches(4 * WEEK):
            first = session.push(batch.bins)
            assert session.push(batch.bins) == 0  # replays accepted
            assert first == len(batch.bins)
            session.advance_watermark(batch.watermark)
        result = session.finalize()
        assert record_bytes(result.curated_records) == batch_small_bytes

    def test_conflicting_duplicate_rejected(self):
        session = small_stream()
        try:
            batch = next(session._source.batches(4 * WEEK))
            session.push(batch.bins)
            clash = batch.bins[0]
            forged = type(clash)(
                country_iso2=clash.country_iso2, kind=clash.kind,
                window_start=clash.window_start, time=clash.time,
                value=clash.value + 0.25)
            with pytest.raises(StreamError, match="conflicting"):
                session.push([forged])
        finally:
            session.close()

    def test_unknown_country_rejected(self):
        session = small_stream()
        try:
            batch = next(session._source.batches(4 * WEEK))
            stray = type(batch.bins[0])(
                country_iso2="ZZ", kind=batch.bins[0].kind,
                window_start=batch.bins[0].window_start,
                time=batch.bins[0].time, value=0.5)
            with pytest.raises(StreamError, match="ZZ"):
                session.push([stray])
        finally:
            session.close()

    def test_missing_bin_under_watermark_is_loud(self):
        session = small_stream()
        try:
            batch = next(session._source.batches(4 * WEEK))
            session.push(batch.bins[:-1])  # drop one elapsed bin
            with pytest.raises(StreamError, match="before it was pushed"):
                session.advance_watermark(batch.watermark)
        finally:
            session.close()

    def test_watermark_must_not_regress(self):
        session = small_stream()
        try:
            for batch in session._source.batches(4 * WEEK):
                session.push(batch.bins)
                session.advance_watermark(batch.watermark)
                break
            assert session.advance_watermark(session.watermark) == []
            with pytest.raises(StreamError, match="regress"):
                session.advance_watermark(session.watermark - 1)
        finally:
            session.close()


class TestLifecycle:
    @pytest.fixture(scope="class")
    def streamed(self):
        session = small_stream()
        for _ in session.replay(2 * WEEK):
            pass
        result = session.finalize()
        return session.events(), result

    def test_every_close_has_an_open(self, streamed):
        events, _ = streamed
        seen_open = set()
        for event in events:
            if event.state == "open":
                seen_open.add(event.key)
            else:
                assert event.key in seen_open, event
        closes = [e for e in events if e.state == "close"]
        opens = [e for e in events if e.state == "open"]
        assert len(closes) == len(opens)

    def test_recorded_closes_carry_the_records(self, streamed):
        # Lifecycle records carry per-country provisional ids;
        # finalize_records reassigns them globally.  Everything else
        # must match record-for-record.
        events, result = streamed

        def keyed(records):
            rows = sorted((record_to_dict(r) for r in records),
                          key=lambda d: (d["start"], d["country"]))
            for row in rows:
                row.pop("record_id")
            return rows

        recorded = [e.record for e in events
                    if e.state == "close" and e.outcome == "recorded"]
        assert all(r is not None for r in recorded)
        assert keyed(recorded) == keyed(result.curated_records)

    def test_outcomes_are_typed(self, streamed):
        events, _ = streamed
        for event in events:
            if event.state == "close":
                assert event.outcome in ("recorded", "dismissed",
                                         "merged")
            else:
                assert event.outcome is None
            assert event.seq > 0 and event.signals is not None

    def test_seq_is_gap_free_and_ordered(self, streamed):
        events, _ = streamed
        assert [e.seq for e in events] \
            == list(range(1, len(events) + 1))


class TestFaultedStream:
    def test_faulted_stream_recovers_byte_identical(
            self, batch_small_bytes):
        session = small_stream(faults="fail_first=2;seed=5")
        for _ in session.replay(4 * WEEK):
            pass
        result = session.finalize()
        assert record_bytes(result.curated_records) == batch_small_bytes


class TestSessionLifetime:
    def test_finalize_is_idempotent(self, batch_small):
        session = small_stream()
        result = session.finalize()
        assert session.finalize() is result
        assert session.finalized

    def test_feed_closed_after_finalize(self):
        session = small_stream()
        session.finalize()
        with pytest.raises(StreamError, match="finalized"):
            session.push([])
        with pytest.raises(StreamError, match="finalized"):
            session.advance_watermark(session.horizon)

    def test_context_manager_finalizes(self, batch_small_bytes):
        with small_stream() as session:
            pass
        assert record_bytes(session.finalize().curated_records) \
            == batch_small_bytes

    def test_close_abandons_without_result(self):
        session = small_stream()
        session.close()
        assert not session.finalized
        with pytest.raises(StreamError):
            session.finalize()


class TestLiveClient:
    def test_cursor_bound_to_stream_revision(self):
        session = small_stream()
        try:
            client = session.client()
            replay = session.replay(2 * WEEK)
            next(replay)
            while client.get_events(limit=5).total == 0:
                next(replay)
            page = client.get_events(limit=1)
            assert page.cursor is not None
            next(replay)  # the watermark (feed revision) moves
            with pytest.raises(CursorError):
                client.get_events(limit=1, cursor=page.cursor)
        finally:
            session.close()

    def test_live_feed_grows_with_the_stream(self, batch_small):
        session = small_stream()
        try:
            client = session.client()
            assert client.get_events(limit=500).total == 0
            for _ in session.replay(2 * WEEK):
                pass
            result = session.finalize()
            assert client.get_events(limit=5000).total \
                == len(result.curated_records)
        finally:
            session.close()


class TestJournalAndTelemetry:
    def test_stream_events_journaled_and_heartbeat_block(self, tmp_path):
        journal = tmp_path / "stream.jsonl"
        session = small_stream(journal=journal, telemetry="20ms")
        for _ in session.replay(4 * WEEK):
            pass
        result = session.finalize()
        lines = [json.loads(line)
                 for line in journal.read_text().splitlines()]
        stream_events = [l for l in lines if l["type"] == "stream.event"]
        recorded = [l for l in stream_events
                    if l.get("outcome") == "recorded"]
        assert len(recorded) == len(result.curated_records)
        heartbeats = [l for l in lines if l["type"] == "heartbeat"]
        assert heartbeats
        blocks = [h["stream"] for h in heartbeats if "stream" in h]
        assert blocks, "no heartbeat carried a stream block"
        final = blocks[-1]
        assert final["windows_active"] == 0
        assert final["open_events"] == 0
        assert final["bins_pushed"] > 0
        assert {"watermark", "lag_seconds"} <= set(final)
