"""Tests for JSON serialization of pipeline artifacts."""

import pytest

from repro.errors import SchemaError
from repro.io import (
    dump_kio_events,
    dump_records,
    kio_event_from_dict,
    kio_event_to_dict,
    load_kio_events,
    load_records,
    record_from_dict,
    record_to_dict,
)


class TestRecordSerialization:
    def test_roundtrip_all_records(self, pipeline_result, tmp_path):
        records = pipeline_result.curated_records
        path = tmp_path / "records.json"
        dump_records(records, path)
        loaded = load_records(path)
        assert loaded == records

    def test_dict_roundtrip(self, pipeline_result):
        record = pipeline_result.curated_records[0]
        assert record_from_dict(record_to_dict(record)) == record

    def test_malformed_rejected(self):
        with pytest.raises(SchemaError):
            record_from_dict({"record_id": 1})

    def test_kind_mismatch_rejected(self, pipeline_result, tmp_path):
        path = tmp_path / "x.json"
        dump_records(pipeline_result.curated_records[:2], path)
        with pytest.raises(SchemaError):
            load_kio_events(path)


class TestCSVExport:
    def test_table1_layout(self, pipeline_result, tmp_path):
        import csv

        from repro.io import dump_records_csv
        path = tmp_path / "records.csv"
        dump_records_csv(pipeline_result.curated_records, path)
        with path.open(encoding="utf-8") as handle:
            rows = list(csv.DictReader(handle))
        assert len(rows) == len(pipeline_result.curated_records)
        first = rows[0]
        for column in ("Start time", "End time", "Country", "Scope",
                       "Cause", "Confirmation Status",
                       "IODA BGP Auto Alert",
                       "IODA Telescope visible by human"):
            assert column in first, column
        assert first["IODA BGP Auto Alert"] in ("TRUE", "FALSE")

    def test_empty_rejected(self, tmp_path):
        from repro.io import dump_records_csv
        with pytest.raises(SchemaError):
            dump_records_csv([], tmp_path / "empty.csv")


class TestKIOEventSerialization:
    def test_roundtrip_all_events(self, pipeline_result, tmp_path):
        events = pipeline_result.kio_events
        path = tmp_path / "kio.json"
        dump_kio_events(events, path)
        assert load_kio_events(path) == events

    def test_dict_roundtrip(self, pipeline_result):
        event = pipeline_result.kio_events[0]
        assert kio_event_from_dict(kio_event_to_dict(event)) == event

    def test_malformed_rejected(self):
        with pytest.raises(SchemaError):
            kio_event_from_dict({"event_id": "x"})
