"""Integration tests: repro.obs wired through the pipeline and executor.

The acceptance bar for the observability subsystem:

- a traced run produces a span tree in which the executor's shard spans
  nest under the ``stage:curate`` span — across BOTH the thread and the
  process backends (process workers trace in their own interpreter and
  the parent grafts their spans back in);
- the JSONL run journal replays through ``summarize_events`` and the
  Chrome ``trace_event`` export is valid JSON;
- instrumentation never perturbs results: curated records are
  byte-identical with tracing on and off;
- the ExecStats report derived from the span tree keeps the exact
  ``as_dict()`` key set the ``--stats --json`` contract promised.
"""

import json

import pytest

import repro.api as api
from repro import io
from repro.exec.stats import SHARD_SPAN, STAGE_PREFIX
from repro.obs import Observability, RunJournal, read_journal, \
    summarize_events, write_chrome_trace
from repro.timeutils.timestamps import TimeRange, utc
from repro.world.scenario import ScenarioConfig

SMALL_CONFIG = ScenarioConfig(seed=7, years=(2018,))
SMALL_PERIOD = TimeRange(utc(2018, 1, 1), utc(2018, 7, 1))

STATS_KEYS = {"workers", "backend", "n_shards", "stages",
              "total_seconds", "cache", "signal_cache", "shards",
              "n_records", "degraded", "quarantined"}


def _record_bytes(records):
    return json.dumps([io.record_to_dict(r) for r in records],
                      sort_keys=True)


def _traced_run(backend, *, journal=None, workers=2):
    obs = Observability(journal=journal)
    run = api.run(
        scenario_config=SMALL_CONFIG, study_period=SMALL_PERIOD,
        workers=workers, backend=backend, observability=obs)
    return run.events, run.stats, obs


def _assert_shards_nest_under_curate(spans):
    by_id = {s.span_id: s for s in spans}
    curate = [s for s in spans if s.name == STAGE_PREFIX + "curate"]
    assert len(curate) == 1
    shards = [s for s in spans if s.name == SHARD_SPAN]
    assert shards, "no shard spans recorded"
    for shard in shards:
        node = shard
        while node.parent_id is not None:
            node = by_id[node.parent_id]
            if node.span_id == curate[0].span_id:
                break
        assert node.span_id == curate[0].span_id, (
            f"shard span {shard.attrs} does not nest under stage:curate")


@pytest.mark.parametrize("backend", ["thread", "process"])
def test_shard_spans_nest_under_curate(backend):
    _, _, obs = _traced_run(backend)
    spans = obs.tracer.spans()
    _assert_shards_nest_under_curate(spans)
    roots = [s for s in spans if s.parent_id is None]
    assert [s.name for s in roots] == ["run"]
    stage_names = {s.name for s in spans if s.name.startswith(STAGE_PREFIX)}
    assert stage_names == {"stage:scenario", "stage:curate", "stage:kio",
                           "stage:merge", "stage:datasets"}


def test_process_shard_spans_carry_worker_pids():
    _, _, obs = _traced_run("process")
    spans = obs.tracer.spans()
    run_span = next(s for s in spans if s.name == "run")
    shard_workers = {s.worker for s in spans if s.name == SHARD_SPAN}
    parent_pid = run_span.worker.split("/")[0]
    assert any(w.split("/")[0] != parent_pid for w in shard_workers), (
        "process-backend shard spans should report worker pids")


def test_tracing_does_not_perturb_results():
    baseline = api.run(scenario_config=SMALL_CONFIG,
                       study_period=SMALL_PERIOD)
    for backend in ("thread", "process"):
        traced, _, _ = _traced_run(backend)
        assert _record_bytes(traced.curated_records) \
            == _record_bytes(baseline.curated_records)


def test_stats_derived_from_spans_keeps_contract():
    _, stats, obs = _traced_run("thread")
    payload = stats.as_dict()
    assert set(payload) == STATS_KEYS
    assert set(payload["stages"]) == {"scenario", "curate", "kio",
                                      "merge", "datasets"}
    assert payload["backend"] == "thread"
    assert payload["workers"] == 2
    assert payload["n_records"] > 0
    assert payload["n_shards"] == len(
        {s.attrs["shard"] for s in obs.tracer.spans()
         if s.name == SHARD_SPAN})


def test_journal_and_trace_exports(tmp_path):
    journal_path = tmp_path / "run.jsonl"
    _, _, obs = _traced_run("thread", journal=RunJournal(journal_path))
    events = read_journal(journal_path)
    kinds = [e["type"] for e in events]
    assert kinds[0] == "run_start" and kinds[-1] == "run_end"
    span_events = [e for e in events if e["type"] == "span"]
    assert len(span_events) == len(obs.tracer.spans())

    summary = summarize_events(events)
    assert summary.n_spans == len(span_events)
    text = "\n".join(summary.rows())
    assert "stage:curate" in text

    trace_path = write_chrome_trace(obs.tracer.spans(),
                                    tmp_path / "trace.json")
    document = json.loads(trace_path.read_text(encoding="utf-8"))
    names = {e["name"] for e in document["traceEvents"] if e["ph"] == "X"}
    assert "stage:curate" in names and SHARD_SPAN in names


def test_hot_path_metrics_are_recorded():
    _, _, obs = _traced_run("thread")
    counters = obs.metrics_snapshot()["counters"]
    assert counters.get("curation.records_finalized", 0) > 0
    assert counters.get("matching.window_comparisons", 0) > 0
    assert counters.get("kio.events_compiled", 0) > 0
    assert any(k.startswith("rng.substreams") for k in counters)
    assert any(k.startswith("curation.records_curated{country=")
               for k in counters)


class TestProfiledRuns:
    def test_profiling_does_not_perturb_results(self):
        baseline = api.run(scenario_config=SMALL_CONFIG,
                           study_period=SMALL_PERIOD)
        for backend in ("serial", "thread", "process"):
            profiled = api.run(
                scenario_config=SMALL_CONFIG, study_period=SMALL_PERIOD,
                workers=1 if backend == "serial" else 2, backend=backend,
                profile=True)
            assert _record_bytes(profiled.curated_records) \
                == _record_bytes(baseline.curated_records), backend

    def test_profiled_stats_payload_is_unchanged(self):
        plain = api.run(
            scenario_config=SMALL_CONFIG, study_period=SMALL_PERIOD).stats
        profiled = api.run(
            scenario_config=SMALL_CONFIG, study_period=SMALL_PERIOD,
            profile=True).stats
        # Same keys, same deterministic values — profile readings must
        # not leak into the --stats --json contract.
        assert set(profiled.as_dict()) == set(plain.as_dict())
        assert profiled.as_dict()["n_records"] \
            == plain.as_dict()["n_records"]

    def test_stage_spans_carry_profile_readings(self):
        obs = Observability(profile=True)
        api.run(scenario_config=SMALL_CONFIG, study_period=SMALL_PERIOD,
                observability=obs)
        stages = [s for s in obs.tracer.spans()
                  if s.name.startswith(STAGE_PREFIX)]
        assert stages
        for span in stages:
            assert "cpu_s" in span.attrs["profile"], span.name
            assert "rss_peak_kb" in span.attrs["profile"], span.name

    def test_process_worker_spans_profile_and_graft_back(self):
        obs = Observability(profile=True)
        api.run(scenario_config=SMALL_CONFIG, study_period=SMALL_PERIOD,
                workers=2, backend="process", observability=obs)
        shards = [s for s in obs.tracer.spans() if s.name == SHARD_SPAN]
        assert shards
        for span in shards:
            assert span.attrs["profile"]["cpu_s"] >= 0.0

    def test_journal_streams_profile_and_health_events(self, tmp_path):
        path = tmp_path / "run.jsonl"
        obs = Observability(journal=RunJournal(path), profile=True)
        api.run(scenario_config=SMALL_CONFIG, study_period=SMALL_PERIOD,
                observability=obs)
        events = read_journal(path)
        kinds = [e["type"] for e in events]
        assert "profile" in kinds
        health = [e for e in events if e["type"] == "health"]
        assert len(health) == 1
        assert health[0]["grade"] in ("pass", "warn", "fail")
        assert health[0]["stats"]["records.curated"] > 0


class TestRunHealth:
    def test_every_run_is_graded(self):
        run = api.run(
            scenario_config=SMALL_CONFIG, study_period=SMALL_PERIOD)
        stats, health = run.stats, run.health
        assert health.grade in ("pass", "warn", "fail")
        assert health.stats["perf.total_seconds"] \
            == pytest.approx(stats.total_seconds)
        assert health.stats["records.curated"] == stats.n_records

    def test_custom_policy_replaces_the_default(self):
        from repro.obs import HealthCheck, HealthPolicy
        policy = HealthPolicy(checks=(
            HealthCheck(name="records.curated", target=1,
                        warn=1e9, fail=1e9),))
        health = api.run(
            scenario_config=SMALL_CONFIG, study_period=SMALL_PERIOD,
            health_policy=policy).health
        assert health.grade == "pass"
        assert len(health.results) == 1

    def test_canonical_run_statistics_shape(self):
        from repro.obs import run_statistics
        run = api.run(
            scenario_config=SMALL_CONFIG, study_period=SMALL_PERIOD)
        statistics = run_statistics(run.events, run.stats)
        assert {"events.union_shutdowns", "events.spontaneous_outages",
                "countries.shutdown", "match.kio_matched_fraction",
                "records.curated", "resilience.quarantined",
                "perf.total_seconds", "cache.hit_rate"} <= set(statistics)
        assert all(isinstance(v, float) for v in statistics.values())


def test_cachestore_metrics_follow_cold_then_warm(tmp_path):
    cold = Observability()
    api.run(scenario_config=SMALL_CONFIG, study_period=SMALL_PERIOD,
            cache_dir=tmp_path, observability=cold)
    cold_counters = cold.metrics_snapshot()["counters"]
    assert cold_counters.get("cachestore.misses{stage=curate}", 0) > 0
    assert cold_counters.get("cachestore.bytes_written{stage=curate}",
                             0) > 0

    warm = Observability()
    api.run(scenario_config=SMALL_CONFIG, study_period=SMALL_PERIOD,
            cache_dir=tmp_path, observability=warm)
    warm_counters = warm.metrics_snapshot()["counters"]
    assert warm_counters.get("cachestore.hits{stage=curate}", 0) > 0
    assert warm_counters.get("cachestore.bytes_read{stage=curate}",
                             0) > 0
    assert warm_counters.get("cachestore.misses{stage=curate}", 0) == 0
