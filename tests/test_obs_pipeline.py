"""Integration tests: repro.obs wired through the pipeline and executor.

The acceptance bar for the observability subsystem:

- a traced run produces a span tree in which the executor's shard spans
  nest under the ``stage:curate`` span — across BOTH the thread and the
  process backends (process workers trace in their own interpreter and
  the parent grafts their spans back in);
- the JSONL run journal replays through ``summarize_events`` and the
  Chrome ``trace_event`` export is valid JSON;
- instrumentation never perturbs results: curated records are
  byte-identical with tracing on and off;
- the ExecStats report derived from the span tree keeps the exact
  ``as_dict()`` key set the ``--stats --json`` contract promised.
"""

import json

import pytest

import repro.api as api
from repro import io
from repro.exec.stats import SHARD_SPAN, STAGE_PREFIX
from repro.obs import Observability, RunJournal, read_journal, \
    summarize_events, write_chrome_trace
from repro.timeutils.timestamps import TimeRange, utc
from repro.world.scenario import ScenarioConfig

SMALL_CONFIG = ScenarioConfig(seed=7, years=(2018,))
SMALL_PERIOD = TimeRange(utc(2018, 1, 1), utc(2018, 7, 1))

STATS_KEYS = {"workers", "backend", "n_shards", "stages",
              "total_seconds", "cache", "shards", "n_records",
              "degraded", "quarantined"}


def _record_bytes(records):
    return json.dumps([io.record_to_dict(r) for r in records],
                      sort_keys=True)


def _traced_run(backend, *, journal=None, workers=2):
    obs = Observability(journal=journal)
    result, stats = api.run_with_stats(
        scenario_config=SMALL_CONFIG, study_period=SMALL_PERIOD,
        workers=workers, backend=backend, observability=obs)
    return result, stats, obs


def _assert_shards_nest_under_curate(spans):
    by_id = {s.span_id: s for s in spans}
    curate = [s for s in spans if s.name == STAGE_PREFIX + "curate"]
    assert len(curate) == 1
    shards = [s for s in spans if s.name == SHARD_SPAN]
    assert shards, "no shard spans recorded"
    for shard in shards:
        node = shard
        while node.parent_id is not None:
            node = by_id[node.parent_id]
            if node.span_id == curate[0].span_id:
                break
        assert node.span_id == curate[0].span_id, (
            f"shard span {shard.attrs} does not nest under stage:curate")


@pytest.mark.parametrize("backend", ["thread", "process"])
def test_shard_spans_nest_under_curate(backend):
    _, _, obs = _traced_run(backend)
    spans = obs.tracer.spans()
    _assert_shards_nest_under_curate(spans)
    roots = [s for s in spans if s.parent_id is None]
    assert [s.name for s in roots] == ["run"]
    stage_names = {s.name for s in spans if s.name.startswith(STAGE_PREFIX)}
    assert stage_names == {"stage:scenario", "stage:curate", "stage:kio",
                           "stage:merge", "stage:datasets"}


def test_process_shard_spans_carry_worker_pids():
    _, _, obs = _traced_run("process")
    spans = obs.tracer.spans()
    run_span = next(s for s in spans if s.name == "run")
    shard_workers = {s.worker for s in spans if s.name == SHARD_SPAN}
    parent_pid = run_span.worker.split("/")[0]
    assert any(w.split("/")[0] != parent_pid for w in shard_workers), (
        "process-backend shard spans should report worker pids")


def test_tracing_does_not_perturb_results():
    baseline = api.run(scenario_config=SMALL_CONFIG,
                       study_period=SMALL_PERIOD)
    for backend in ("thread", "process"):
        traced, _, _ = _traced_run(backend)
        assert _record_bytes(traced.curated_records) \
            == _record_bytes(baseline.curated_records)


def test_stats_derived_from_spans_keeps_contract():
    _, stats, obs = _traced_run("thread")
    payload = stats.as_dict()
    assert set(payload) == STATS_KEYS
    assert set(payload["stages"]) == {"scenario", "curate", "kio",
                                      "merge", "datasets"}
    assert payload["backend"] == "thread"
    assert payload["workers"] == 2
    assert payload["n_records"] > 0
    assert payload["n_shards"] == len(
        {s.attrs["shard"] for s in obs.tracer.spans()
         if s.name == SHARD_SPAN})


def test_journal_and_trace_exports(tmp_path):
    journal_path = tmp_path / "run.jsonl"
    _, _, obs = _traced_run("thread", journal=RunJournal(journal_path))
    events = read_journal(journal_path)
    kinds = [e["type"] for e in events]
    assert kinds[0] == "run_start" and kinds[-1] == "run_end"
    span_events = [e for e in events if e["type"] == "span"]
    assert len(span_events) == len(obs.tracer.spans())

    summary = summarize_events(events)
    assert summary.n_spans == len(span_events)
    text = "\n".join(summary.rows())
    assert "stage:curate" in text

    trace_path = write_chrome_trace(obs.tracer.spans(),
                                    tmp_path / "trace.json")
    document = json.loads(trace_path.read_text(encoding="utf-8"))
    names = {e["name"] for e in document["traceEvents"] if e["ph"] == "X"}
    assert "stage:curate" in names and SHARD_SPAN in names


def test_hot_path_metrics_are_recorded():
    _, _, obs = _traced_run("thread")
    counters = obs.metrics_snapshot()["counters"]
    assert counters.get("curation.records_finalized", 0) > 0
    assert counters.get("matching.window_comparisons", 0) > 0
    assert counters.get("kio.events_compiled", 0) > 0
    assert any(k.startswith("rng.substreams") for k in counters)
    assert any(k.startswith("curation.records_curated{country=")
               for k in counters)


def test_cachestore_metrics_follow_cold_then_warm(tmp_path):
    cold = Observability()
    api.run(scenario_config=SMALL_CONFIG, study_period=SMALL_PERIOD,
            cache_dir=tmp_path, observability=cold)
    cold_counters = cold.metrics_snapshot()["counters"]
    assert cold_counters.get("cachestore.misses{stage=curate}", 0) > 0
    assert cold_counters.get("cachestore.bytes_written{stage=curate}",
                             0) > 0

    warm = Observability()
    api.run(scenario_config=SMALL_CONFIG, study_period=SMALL_PERIOD,
            cache_dir=tmp_path, observability=warm)
    warm_counters = warm.metrics_snapshot()["counters"]
    assert warm_counters.get("cachestore.hits{stage=curate}", 0) > 0
    assert warm_counters.get("cachestore.bytes_read{stage=curate}",
                             0) > 0
    assert warm_counters.get("cachestore.misses{stage=curate}", 0) == 0
