"""Tests for the radix trie."""

from hypothesis import given, strategies as st

from repro.net.ipv4 import IPv4Address, Prefix, parse_prefix
from repro.net.prefixtree import PrefixTree


class TestPrefixTree:
    def test_empty_lookup(self):
        tree = PrefixTree()
        assert tree.lookup(IPv4Address.parse("1.2.3.4")) is None
        assert len(tree) == 0

    def test_exact_and_contains(self):
        tree = PrefixTree()
        prefix = parse_prefix("10.0.0.0/8")
        tree[prefix] = "a"
        assert tree.exact(prefix) == "a"
        assert prefix in tree
        assert parse_prefix("10.0.0.0/9") not in tree

    def test_longest_match_prefers_specific(self):
        tree = PrefixTree()
        tree[parse_prefix("10.0.0.0/8")] = "outer"
        tree[parse_prefix("10.1.0.0/16")] = "inner"
        assert tree.lookup(IPv4Address.parse("10.1.2.3")) == "inner"
        assert tree.lookup(IPv4Address.parse("10.2.2.3")) == "outer"
        match = tree.longest_match(IPv4Address.parse("10.1.2.3"))
        assert match is not None
        assert str(match[0]) == "10.1.0.0/16"

    def test_default_route(self):
        tree = PrefixTree()
        tree[parse_prefix("0.0.0.0/0")] = "default"
        assert tree.lookup(IPv4Address.parse("200.1.2.3")) == "default"

    def test_replace_value(self):
        tree = PrefixTree()
        prefix = parse_prefix("10.0.0.0/8")
        tree[prefix] = "a"
        tree[prefix] = "b"
        assert tree.exact(prefix) == "b"
        assert len(tree) == 1

    def test_items_roundtrip(self):
        tree = PrefixTree()
        prefixes = [parse_prefix(p) for p in
                    ("10.0.0.0/8", "10.1.0.0/16", "192.0.2.0/24")]
        for i, prefix in enumerate(prefixes):
            tree[prefix] = i
        collected = dict(tree.items())
        assert collected == {p: i for i, p in enumerate(prefixes)}

    @given(st.lists(
        st.tuples(st.integers(min_value=0, max_value=2**24 - 1),
                  st.integers(min_value=0, max_value=8)),
        min_size=1, max_size=40))
    def test_longest_match_agrees_with_linear_scan(self, raw):
        tree = PrefixTree()
        prefixes = []
        for block, shift in raw:
            size = 1 << shift
            aligned = (block // size) * size
            prefix = Prefix(aligned << 8, 24 - shift)
            tree[prefix] = str(prefix)
            prefixes.append(prefix)
        probe = IPv4Address((raw[0][0] << 8) | 7)
        expected = None
        best_len = -1
        for prefix in prefixes:
            if prefix.contains(probe) and prefix.length > best_len:
                best_len = prefix.length
                expected = str(prefix)
        assert tree.lookup(probe) == expected
