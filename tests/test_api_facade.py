"""Smoke tests for the stable repro.api facade."""

import pytest

import repro
import repro.api as api
from repro.exec import ExecStats
from repro.timeutils.timestamps import TimeRange, utc
from repro.world.scenario import ScenarioConfig

SMALL_CONFIG = ScenarioConfig(seed=11, years=(2019,))
SMALL_PERIOD = TimeRange(utc(2019, 1, 1), utc(2019, 5, 1))


@pytest.fixture(scope="module")
def cache_dir(tmp_path_factory):
    return tmp_path_factory.mktemp("api-cache")


@pytest.fixture(scope="module")
def run_output(cache_dir):
    return api.run_with_stats(
        scenario_config=SMALL_CONFIG, study_period=SMALL_PERIOD,
        workers=2, cache_dir=cache_dir)


class TestRun:
    def test_returns_pipeline_result(self, run_output):
        result, stats = run_output
        assert isinstance(result, api.PipelineResult)
        assert result.curated_records
        assert result.kio_events
        assert result.merged.labeled

    def test_stats_report_cold_run(self, run_output):
        _, stats = run_output
        assert isinstance(stats, ExecStats)
        assert stats.workers == 2
        assert stats.cache_misses == stats.n_shards
        assert stats.n_records > 0

    def test_warm_rerun_skips_curation(self, run_output, cache_dir):
        cold_result, _ = run_output
        result, stats = api.run_with_stats(
            scenario_config=SMALL_CONFIG, study_period=SMALL_PERIOD,
            workers=2, cache_dir=cache_dir)
        assert stats.curate_skipped
        assert stats.cache_hits == stats.n_shards
        assert [r.record_id for r in result.curated_records] \
            == [r.record_id for r in cold_result.curated_records]

    def test_facade_is_importable_from_package_root(self):
        assert repro.api.run is api.run


class TestClient:
    def test_client_serves_cursor_paginated_feed(self, run_output):
        result, _ = run_output
        client = api.client(result)
        seen = []
        cursor = None
        while True:
            page = client.get_events(limit=25, cursor=cursor)
            seen.extend(page.events)
            if page.cursor is None:
                break
            cursor = page.cursor
        assert len(seen) == len(result.curated_records)

    def test_records_override(self, run_output):
        result, _ = run_output
        subset = result.curated_records[:3]
        client = api.client(result, records=subset)
        page = client.get_events(limit=10)
        assert page.total == len(subset)


class TestRecordIO:
    def test_dump_load_roundtrip(self, run_output, tmp_path):
        result, _ = run_output
        path = tmp_path / "records.json"
        api.dump_records(result.curated_records, path)
        loaded = api.load_records(path)
        assert loaded == list(result.curated_records)
