"""Smoke tests for the stable repro.api facade."""

import pytest

import repro
import repro.api as api
from repro.exec import ExecStats
from repro.obs import HealthReport
from repro.timeutils.timestamps import TimeRange, utc
from repro.world.scenario import ScenarioConfig

SMALL_CONFIG = ScenarioConfig(seed=11, years=(2019,))
SMALL_PERIOD = TimeRange(utc(2019, 1, 1), utc(2019, 5, 1))


@pytest.fixture(scope="module")
def cache_dir(tmp_path_factory):
    return tmp_path_factory.mktemp("api-cache")


@pytest.fixture(scope="module")
def run_output(cache_dir):
    return api.run(
        scenario_config=SMALL_CONFIG, study_period=SMALL_PERIOD,
        workers=2, cache_dir=cache_dir)


class TestRun:
    def test_returns_run_result(self, run_output):
        assert isinstance(run_output, api.RunResult)
        assert isinstance(run_output.events, api.PipelineResult)
        assert run_output.curated_records
        assert run_output.kio_events
        assert run_output.merged.labeled
        assert run_output.journal_path is None

    def test_passthroughs_mirror_events(self, run_output):
        assert run_output.curated_records \
            is run_output.events.curated_records
        assert run_output.kio_events is run_output.events.kio_events
        assert run_output.merged is run_output.events.merged
        assert run_output.scenario is run_output.events.scenario

    def test_stats_report_cold_run(self, run_output):
        stats = run_output.stats
        assert isinstance(stats, ExecStats)
        assert stats.workers == 2
        assert stats.cache_misses == stats.n_shards
        assert stats.n_records > 0

    def test_health_scorecard_attached(self, run_output):
        assert isinstance(run_output.health, HealthReport)
        assert run_output.health.grade in ("pass", "warn", "fail")

    def test_warm_rerun_skips_curation(self, run_output, cache_dir):
        result = api.run(
            scenario_config=SMALL_CONFIG, study_period=SMALL_PERIOD,
            workers=2, cache_dir=cache_dir)
        assert result.stats.curate_skipped
        assert result.stats.cache_hits == result.stats.n_shards
        assert [r.record_id for r in result.curated_records] \
            == [r.record_id for r in run_output.curated_records]

    def test_journal_shorthand(self, tmp_path):
        journal = tmp_path / "run.jsonl"
        result = api.run(
            scenario_config=SMALL_CONFIG, study_period=SMALL_PERIOD,
            journal=journal)
        assert result.journal_path == journal
        assert journal.exists()
        assert api.read_journal(journal)

    def test_journal_and_observability_are_exclusive(self, tmp_path):
        with pytest.raises(ValueError):
            api.run(journal=tmp_path / "run.jsonl",
                    observability=api.Observability())

    def test_facade_is_importable_from_package_root(self):
        assert repro.api.run is api.run


class TestRemovedShims:
    def test_tuple_shims_are_gone(self):
        # Deprecated in PR 6, removed with the api.stream redesign: the
        # RunResult is the only return shape.
        assert not hasattr(api, "run_with_stats")
        assert not hasattr(api, "run_with_health")
        assert "run_with_stats" not in api.__all__
        assert "run_with_health" not in api.__all__

    def test_stream_is_exported(self):
        assert "stream" in api.__all__
        assert "StreamSession" in api.__all__


class TestClient:
    def test_client_serves_cursor_paginated_feed(self, run_output):
        client = api.client(run_output)
        seen = []
        cursor = None
        while True:
            page = client.get_events(limit=25, cursor=cursor)
            seen.extend(page.events)
            if page.cursor is None:
                break
            cursor = page.cursor
        assert len(seen) == len(run_output.curated_records)

    def test_client_accepts_bare_pipeline_result(self, run_output):
        client = api.client(run_output.events)
        page = client.get_events(limit=5)
        assert page.total == len(run_output.curated_records)

    def test_records_override(self, run_output):
        subset = run_output.curated_records[:3]
        client = api.client(run_output, records=subset)
        page = client.get_events(limit=10)
        assert page.total == len(subset)


class TestRecordIO:
    def test_dump_load_roundtrip(self, run_output, tmp_path):
        path = tmp_path / "records.json"
        api.dump_records(run_output.curated_records, path)
        loaded = api.load_records(path)
        assert loaded == list(run_output.curated_records)
