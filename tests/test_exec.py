"""Tests for the sharded execution engine (repro.exec).

The headline guarantees under test:

- a parallel run (any worker count, any backend) is byte-identical to a
  serial run;
- a warm content-addressed cache serves every shard and skips the
  observation+curation stage entirely (visible in ExecStats counters);
- changing any config that feeds a stage forces cache misses — the
  regression for the old seed-keyed cache, which silently reused records
  curated under different parameters.

The end-to-end tests run on a deliberately small scenario (one study
year, six-month period) so each cold curation costs seconds, not
minutes.
"""

import json

import pytest

from repro import io
from repro.errors import ConfigurationError
from repro.exec import (
    CACHE_VERSION,
    CacheStore,
    DEFAULT_N_SHARDS,
    ExecStats,
    ExecutorConfig,
    ShardPlan,
    ShardedCurationExecutor,
    fingerprint,
)
from repro.core.pipeline import ReproPipeline
from repro.ioda.curation import CurationConfig
from repro.timeutils.timestamps import TimeRange, utc
from repro.world.scenario import ScenarioConfig, ScenarioGenerator

SMALL_CONFIG = ScenarioConfig(seed=7, years=(2018,))
SMALL_PERIOD = TimeRange(utc(2018, 1, 1), utc(2018, 7, 1))


def _record_bytes(records):
    """Canonical serialized form, for byte-identity assertions."""
    return json.dumps([io.record_to_dict(r) for r in records],
                      sort_keys=True)


def _curate(scenario, *, workers=1, backend="serial", cache=None,
            n_shards=None, curation_config=None):
    stats = ExecStats()
    executor = ShardedCurationExecutor(
        study_period=SMALL_PERIOD,
        curation_config=curation_config,
        cache=cache,
        config=ExecutorConfig(workers=workers, backend=backend,
                              n_shards=n_shards))
    records = executor.curate(scenario, stats)
    return records, stats


@pytest.fixture(scope="module")
def small_scenario():
    return ScenarioGenerator(SMALL_CONFIG).generate()


@pytest.fixture(scope="module")
def serial_result():
    """The serial-pipeline baseline every equivalence test compares to."""
    return ReproPipeline(scenario_config=SMALL_CONFIG,
                         study_period=SMALL_PERIOD).run()


@pytest.fixture(scope="module")
def serial_records(serial_result):
    assert serial_result.curated_records
    return serial_result.curated_records


# -- sharding -------------------------------------------------------------------


class TestShardPlan:
    def test_round_robin_is_deterministic_and_complete(self):
        countries = ["SY", "IN", "ET", "IR", "MM", "SD", "DZ"]
        plan = ShardPlan.split(countries, 3)
        again = ShardPlan.split(list(reversed(countries)), 3)
        assert plan == again
        assert plan.countries == tuple(sorted(countries))
        assert sum(len(s.countries) for s in plan) == len(countries)

    def test_weighted_split_balances_heavy_hitters(self):
        countries = [f"C{i}" for i in range(8)]
        weights = {c: 100.0 if c == "C0" else 1.0 for c in countries}
        plan = ShardPlan.split(countries, 2, weights=weights)
        shard_of = plan.shard_of()
        heavy = shard_of["C0"]
        # LPT puts every light country on the other shard.
        assert all(shard_of[c] != heavy for c in countries if c != "C0")

    def test_empty_shards_dropped(self):
        plan = ShardPlan.split(["AA", "BB"], 8)
        assert len(plan) == 2
        assert plan.countries == ("AA", "BB")

    def test_invalid_shard_count_rejected(self):
        with pytest.raises(ConfigurationError):
            ShardPlan.split(["AA"], 0)


# -- fingerprinting and the cache store -----------------------------------------


class TestFingerprint:
    def test_stable_and_order_sensitive(self):
        assert fingerprint(1, "a") == fingerprint(1, "a")
        assert fingerprint(1, "a") != fingerprint("a", 1)

    def test_mapping_order_does_not_leak(self):
        assert fingerprint({"a": 1, "b": 2}) == fingerprint({"b": 2, "a": 1})

    def test_dataclass_type_is_part_of_the_key(self):
        assert fingerprint(ScenarioConfig()) != fingerprint(CurationConfig())

    def test_config_field_change_changes_key(self):
        assert (fingerprint(CurationConfig())
                != fingerprint(CurationConfig(min_visible_bins=3)))


class TestCacheStore:
    def test_roundtrip(self, tmp_path):
        store = CacheStore(tmp_path)
        payload = {"records": [["SY", []]]}
        store.put("curate", payload, "key")
        assert store.get("curate", "key") == payload
        assert store.get("curate", "other-key") is None

    def test_version_in_filename(self, tmp_path):
        store = CacheStore(tmp_path)
        path = store.put("curate", {}, "key")
        assert f"-v{CACHE_VERSION}-" in path.name

    def test_corrupt_entry_reads_as_miss(self, tmp_path):
        store = CacheStore(tmp_path)
        path = store.put("curate", {"ok": True}, "key")
        path.write_text("{truncated", encoding="utf-8")
        assert store.get("curate", "key") is None

    def test_put_is_best_effort_when_root_unwritable(self, tmp_path):
        # A regular file where the cache root should be makes mkdir fail
        # even for root; the write must degrade to a no-op, not raise.
        blocker = tmp_path / "blocker"
        blocker.write_text("", encoding="utf-8")
        store = CacheStore(blocker / "cache")
        assert store.put("curate", {"ok": True}, "key") is None
        assert store.get("curate", "key") is None

    def test_distinct_configs_get_distinct_files(self, tmp_path):
        # Regression: the old seed-keyed cache reused records across
        # config changes because the config never entered the file name.
        store = CacheStore(tmp_path)
        default = store.path_for("curate", CurationConfig())
        changed = store.path_for("curate",
                                 CurationConfig(min_visible_bins=3))
        assert default != changed


# -- executor config ------------------------------------------------------------


class TestExecutorConfig:
    def test_defaults(self):
        config = ExecutorConfig()
        assert config.workers == 1
        assert config.n_shards is None

    @pytest.mark.parametrize("kwargs", [
        {"workers": 0},
        {"backend": "mpi"},
        {"n_shards": 0},
    ])
    def test_invalid_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            ExecutorConfig(**kwargs)


class TestExecStats:
    def test_curate_skipped_semantics(self):
        stats = ExecStats(n_shards=8, cache_hits=8, cache_misses=0)
        assert stats.curate_skipped
        stats = ExecStats(n_shards=8, cache_hits=7, cache_misses=1)
        assert not stats.curate_skipped
        assert not ExecStats().curate_skipped

    def test_shard_skew(self):
        stats = ExecStats()
        assert stats.shard_skew == 0.0
        stats.record_shard(0, 1.0)
        stats.record_shard(1, 3.0)
        assert stats.shard_skew == pytest.approx(1.5)

    def test_as_dict_shape(self):
        stats = ExecStats(workers=4, backend="thread", n_shards=8)
        stats.add_stage("curate", 1.25)
        report = stats.as_dict()
        assert set(report) == {"workers", "backend", "n_shards", "stages",
                               "total_seconds", "cache", "signal_cache",
                               "shards", "n_records", "degraded",
                               "quarantined"}
        assert report["signal_cache"] == {"hits": 0, "misses": 0,
                                          "evictions": 0}
        assert report["stages"] == {"curate": 1.25}
        assert report["cache"] == {"hits": 0, "misses": 0,
                                   "curate_skipped": True}
        assert report["degraded"] is False
        assert report["quarantined"] == []

    def test_degraded_run_reported(self):
        stats = ExecStats(degraded=True, quarantined=("IR", "SY"))
        report = stats.as_dict()
        assert report["degraded"] is True
        assert report["quarantined"] == ["IR", "SY"]
        assert any("quarantined: IR, SY" in row for row in stats.rows())


# -- serial/parallel equivalence ------------------------------------------------


class TestEquivalence:
    def test_thread_pool_is_byte_identical_to_serial(self, small_scenario,
                                                     serial_records):
        parallel, stats = _curate(small_scenario, workers=4,
                                  backend="thread")
        assert _record_bytes(parallel) == _record_bytes(serial_records)
        assert stats.n_shards == DEFAULT_N_SHARDS
        assert len(stats.shard_seconds) == stats.n_shards

    def test_process_pool_is_byte_identical_to_serial(self, small_scenario,
                                                      serial_records):
        parallel, _ = _curate(small_scenario, workers=2, backend="process")
        assert _record_bytes(parallel) == _record_bytes(serial_records)

    def test_shard_count_does_not_change_results(self, small_scenario,
                                                 serial_records):
        records, stats = _curate(small_scenario, n_shards=3)
        assert stats.n_shards == 3
        assert _record_bytes(records) == _record_bytes(serial_records)

    def test_record_ids_are_sequential(self, serial_records):
        assert sorted(r.record_id for r in serial_records) \
            == list(range(1, len(serial_records) + 1))


# -- caching --------------------------------------------------------------------


class TestStageCache:
    def test_cold_warm_and_config_invalidation(self, tmp_path,
                                               small_scenario,
                                               serial_records):
        cache = CacheStore(tmp_path)

        cold, cold_stats = _curate(small_scenario, workers=2,
                                   backend="thread", cache=cache)
        assert cold_stats.cache_hits == 0
        assert cold_stats.cache_misses == cold_stats.n_shards
        assert not cold_stats.curate_skipped
        assert _record_bytes(cold) == _record_bytes(serial_records)

        warm, warm_stats = _curate(small_scenario, workers=2,
                                   backend="thread", cache=cache)
        assert warm_stats.cache_hits == warm_stats.n_shards
        assert warm_stats.cache_misses == 0
        assert warm_stats.curate_skipped
        assert not warm_stats.shard_seconds
        assert _record_bytes(warm) == _record_bytes(serial_records)

        # Regression: a changed curation config must miss, never be
        # served records curated under the old parameters.
        _, changed_stats = _curate(
            small_scenario, cache=cache,
            curation_config=CurationConfig(min_visible_bins=3))
        assert changed_stats.cache_hits == 0
        assert changed_stats.cache_misses == changed_stats.n_shards

    def test_warm_cache_survives_pool_resize(self, tmp_path,
                                             small_scenario,
                                             serial_records):
        cache = CacheStore(tmp_path)
        _curate(small_scenario, workers=1, cache=cache)
        resized, stats = _curate(small_scenario, workers=4,
                                 backend="thread", cache=cache)
        assert stats.curate_skipped
        assert _record_bytes(resized) == _record_bytes(serial_records)


# -- pipeline-level integration -------------------------------------------------


def _label_rows(result):
    return [(e.record.record_id, e.label, e.via_kio_match, e.via_cause,
             e.matched_kio_ids) for e in result.merged.labeled]


class TestPipelineIntegration:
    def test_parallel_pipeline_matches_serial(self, serial_result,
                                              serial_records):
        pipeline = ReproPipeline(
            scenario_config=SMALL_CONFIG, study_period=SMALL_PERIOD,
            executor=ExecutorConfig(workers=4, backend="thread"))
        result = pipeline.run()
        assert _record_bytes(result.curated_records) \
            == _record_bytes(serial_records)
        assert _label_rows(result) == _label_rows(serial_result)
        assert pipeline.stats is not None
        assert [s.name for s in pipeline.stats.stages] \
            == ["scenario", "curate", "kio", "merge", "datasets"]
