"""Tests for the triage heuristic and the shutdown classifier."""

import time

import numpy as np
import pytest

from repro.core.classifier import (
    FEATURE_NAMES,
    FeatureExtractor,
    evaluate,
    train_classifier,
)
from repro.core.heuristics import ShutdownTriage, TriageVerdict
from repro.errors import ConfigurationError
from repro.timeutils.timezones import local_date


def _libdem_index(pipeline_result):
    registry = pipeline_result.merged.registry
    index = {}
    for record in pipeline_result.vdem:
        iso2 = registry.by_name(record.country_name).iso2
        index[(iso2, record.year)] = record.liberal_democracy
    return index


def _mobilization_cells(pipeline_result):
    registry = pipeline_result.merged.registry
    cells = set()
    for dataset in (pipeline_result.coups, pipeline_result.elections,
                    pipeline_result.protests):
        for record in dataset:
            iso2 = registry.by_name(record.country_name).iso2
            cells.add((iso2, record.day))
    return cells


@pytest.fixture(scope="module")
def triage(pipeline_result):
    return ShutdownTriage(
        pipeline_result.merged.registry,
        _mobilization_cells(pipeline_result),
        _libdem_index(pipeline_result),
        pipeline_result.state_shares)


class TestTriage:
    def test_assessment_fields(self, triage, pipeline_result):
        event = pipeline_result.merged.ioda_shutdowns()[0]
        year = time.gmtime(event.record.span.start).tm_year
        assessment = triage.assess(event.record, year)
        assert 0 <= assessment.score <= 4
        assert assessment.record_id == event.record.record_id
        assert len(assessment.rows()) == 6

    def test_heuristic_separates_classes(self, triage, pipeline_result):
        merged = pipeline_result.merged

        def verdict_rate(events):
            hits = 0
            for event in events:
                year = time.gmtime(event.record.span.start).tm_year
                verdict = triage.assess(event.record, year).verdict
                if verdict is TriageVerdict.LIKELY_SHUTDOWN:
                    hits += 1
            return hits / len(events)

        shutdown_rate = verdict_rate(merged.ioda_shutdowns())
        outage_rate = verdict_rate(merged.ioda_outages())
        assert shutdown_rate > 0.6
        assert outage_rate < shutdown_rate / 2


class TestClassifier:
    @pytest.fixture(scope="class")
    def data(self, pipeline_result):
        merged = pipeline_result.merged
        extractor = FeatureExtractor(
            merged.registry, _libdem_index(pipeline_result),
            pipeline_result.state_shares)
        events = merged.labeled
        records = [e.record for e in events]
        features = extractor.extract(records)
        labels = np.array([e.is_shutdown for e in events], dtype=np.int64)
        return features, labels

    def test_feature_matrix_shape(self, data):
        features, labels = data
        assert features.shape == (len(labels), len(FEATURE_NAMES))
        assert set(np.unique(labels)) == {0, 1}

    def test_training_converges(self, data):
        features, labels = data
        result = train_classifier(features, labels)
        assert result.final_loss < result.losses[0]
        assert result.final_loss < 0.35

    def test_holdout_performance(self, data):
        features, labels = data
        rng = np.random.default_rng(0)
        order = rng.permutation(len(labels))
        split = int(0.7 * len(labels))
        train_idx, test_idx = order[:split], order[split:]
        result = train_classifier(features[train_idx], labels[train_idx])
        metrics = evaluate(result.model, features[test_idx],
                           labels[test_idx])
        assert metrics["accuracy"] > 0.85
        assert metrics["f1"] > 0.7

    def test_informative_features_ranked_high(self, data):
        features, labels = data
        result = train_classifier(features, labels)
        top = {name for name, _ in result.model.feature_importance()[:5]}
        assert top & {"on_local_hour", "duration_30min_multiple",
                      "recent_event_within_4d", "autocracy_score",
                      "duration_round_spike", "night_start_00_06"}

    def test_single_class_rejected(self, data):
        features, labels = data
        with pytest.raises(ConfigurationError):
            train_classifier(features, np.zeros_like(labels))

    def test_shape_mismatch_rejected(self, data):
        features, labels = data
        with pytest.raises(ConfigurationError):
            train_classifier(features[:10], labels[:5])
