"""Span-tree diffing (``repro trace diff``).

The acceptance bar:

- span paths resolve root-to-leaf through the journal's own id space,
  including spans adopted from process workers (lineage preserved);
- diffing a journal against itself reports a delta of exactly zero on
  every path;
- a real regression is attributed to the specific path that slowed
  down, ordered by magnitude, with improvements reported separately.
"""

import json

import pytest

import repro.api as api
from repro.cli import main
from repro.obs import diff_events, read_journal, span_path_seconds
from repro.obs.tracediff import DEFAULT_EPSILON
from repro.timeutils.timestamps import TimeRange, utc
from repro.world.scenario import ScenarioConfig

SMALL_CONFIG = ScenarioConfig(seed=7, years=(2018,))
SMALL_PERIOD = TimeRange(utc(2018, 1, 1), utc(2018, 7, 1))


def span(sid, name, duration, parent=None, start=0.0, worker="1/main"):
    return {"type": "span", "span_id": sid, "parent_id": parent,
            "name": name, "start": start, "duration": duration,
            "worker": worker}


def journal_events(shard_seconds=(1.0, 1.0), merge_seconds=0.5):
    """A synthetic run: run -> stage:curate -> shards, plus a merge."""
    events = [
        {"type": "run_start", "version": 1, "ts": 100.0},
        span(1, "run", sum(shard_seconds) + merge_seconds),
        span(2, "stage:curate", sum(shard_seconds), parent=1),
    ]
    for i, seconds in enumerate(shard_seconds):
        # Worker pids differ, as with spans adopted from process
        # workers; lineage still resolves through the shard's parent.
        events.append(span(10 + i, "exec.shard", seconds, parent=2,
                           worker=f"{100 + i}/worker"))
    events.append(span(3, "stage:merge", merge_seconds, parent=1))
    events.append({"type": "run_end",
                   "ts": 100.0 + sum(shard_seconds) + merge_seconds})
    return events


def write_journal(path, events):
    path.write_text(
        "".join(json.dumps(e, sort_keys=True) + "\n" for e in events),
        encoding="utf-8")
    return path


class TestSpanPathSeconds:
    def test_paths_resolve_through_parent_chain(self):
        by_path = span_path_seconds(journal_events())
        assert by_path["run"] == (1, 2.5)
        assert by_path["run/stage:curate"] == (1, 2.0)
        assert by_path["run/stage:curate/exec.shard"] == (2, 2.0)
        assert by_path["run/stage:merge"] == (1, 0.5)

    def test_orphaned_parent_falls_back_to_name(self):
        # A parent id absent from the journal (e.g. a truncated live
        # journal) must not crash path resolution.
        by_path = span_path_seconds([span(7, "exec.shard", 1.5,
                                          parent=99)])
        assert by_path == {"exec.shard": (1, 1.5)}

    def test_non_span_events_are_ignored(self):
        events = journal_events() + [
            {"type": "heartbeat", "seq": 1, "final": True},
            {"type": "metrics", "counters": {}},
        ]
        assert span_path_seconds(events) \
            == span_path_seconds(journal_events())


class TestDiffEvents:
    def test_self_diff_is_zero_on_every_path(self):
        events = journal_events()
        diff = diff_events(events, events)
        assert diff.total_delta == 0.0
        assert diff.changed == ()
        assert all(d.delta == 0.0 for d in diff.deltas)
        text = "\n".join(diff.rows())
        assert "zero delta" in text

    def test_regression_attributed_to_its_path(self):
        a = journal_events(shard_seconds=(1.0, 1.0), merge_seconds=0.5)
        b = journal_events(shard_seconds=(1.5, 1.5), merge_seconds=0.3)
        diff = diff_events(a, b, label_a="before", label_b="after")
        regressed = diff.regressed()
        assert regressed[0].delta == pytest.approx(1.0)
        shard = next(d for d in regressed
                     if d.path == "run/stage:curate/exec.shard")
        assert shard.delta == pytest.approx(1.0)
        assert (shard.count_a, shard.count_b) == (2, 2)
        improved = diff.improved()
        assert [d.path for d in improved] == ["run/stage:merge"]
        assert improved[0].delta == pytest.approx(-0.2)
        text = "\n".join(diff.rows())
        assert "slower in after" in text
        assert "faster in after" in text

    def test_deltas_sorted_by_magnitude(self):
        a = journal_events(shard_seconds=(1.0, 1.0), merge_seconds=0.5)
        b = journal_events(shard_seconds=(3.0, 3.0), merge_seconds=0.4)
        diff = diff_events(a, b)
        magnitudes = [abs(d.delta) for d in diff.deltas]
        assert magnitudes == sorted(magnitudes, reverse=True)

    def test_top_limits_the_report(self):
        a = journal_events(shard_seconds=(1.0,), merge_seconds=0.5)
        b = journal_events(shard_seconds=(2.0,), merge_seconds=1.5)
        diff = diff_events(a, b)
        assert len(diff.regressed(top=1)) == 1
        assert len(diff.regressed(top=10)) > 1

    def test_sub_epsilon_deltas_are_unchanged(self):
        a = journal_events(shard_seconds=(1.0, 1.0))
        b = journal_events(shard_seconds=(1.0, 1.0 + DEFAULT_EPSILON / 2))
        diff = diff_events(a, b)
        assert diff.changed == ()
        diff = diff_events(a, b, epsilon=0.0001)
        assert diff.changed != ()

    def test_path_only_in_one_run(self):
        a = journal_events()
        b = journal_events() + [span(50, "stage:extra", 2.0, parent=1)]
        diff = diff_events(a, b)
        extra = next(d for d in diff.deltas
                     if d.path == "run/stage:extra")
        assert (extra.count_a, extra.count_b) == (0, 1)
        assert extra.delta == pytest.approx(2.0)

    def test_totals_from_run_markers(self):
        a = journal_events(shard_seconds=(1.0, 1.0), merge_seconds=0.5)
        diff = diff_events(a, a)
        assert diff.total_a == pytest.approx(2.5)

    def test_totals_fall_back_to_span_envelope(self):
        events = [span(1, "run", 2.0, start=10.0)]
        diff = diff_events(events, events)
        assert diff.total_a == pytest.approx(2.0)


class TestRealRun:
    def test_real_journal_self_diff_is_zero(self, tmp_path):
        path = tmp_path / "run.jsonl"
        api.run(scenario_config=SMALL_CONFIG, study_period=SMALL_PERIOD,
                workers=2, backend="process", journal=path)
        events = read_journal(path)
        diff = diff_events(events, events)
        assert diff.changed == ()
        # Adopted worker spans resolved into full paths, not orphans.
        shard_paths = [d.path for d in diff.deltas
                       if d.path.endswith("exec.shard")]
        assert shard_paths == ["run/stage:curate/exec.shard"]


class TestCli:
    def test_trace_diff_self_reports_zero(self, tmp_path, capsys):
        path = write_journal(tmp_path / "a.jsonl", journal_events())
        assert main(["trace", "diff", str(path), str(path)]) == 0
        assert "zero delta" in capsys.readouterr().out

    def test_trace_diff_two_runs(self, tmp_path, capsys):
        a = write_journal(tmp_path / "a.jsonl", journal_events())
        b = write_journal(
            tmp_path / "b.jsonl",
            journal_events(shard_seconds=(2.0, 2.0)))
        assert main(["trace", "diff", str(a), str(b)]) == 0
        out = capsys.readouterr().out
        assert "exec.shard" in out

    def test_trace_diff_missing_journal_exits_2(self, tmp_path, capsys):
        a = write_journal(tmp_path / "a.jsonl", journal_events())
        assert main(["trace", "diff", str(a),
                     str(tmp_path / "missing.jsonl")]) == 2
        err = capsys.readouterr().err
        assert "error:" in err and "Traceback" not in err
