"""Tests for the figure data export."""

import csv

import pytest

from repro.analysis.figures import figure_series, write_csvs


@pytest.fixture(scope="module")
def figures(pipeline_result):
    return figure_series(pipeline_result)


class TestFigureSeries:
    def test_all_figures_present(self, figures):
        expected = {
            "fig02_kio_categories", "fig04_liberal_democracy",
            "fig05_military_power", "fig06a_media_bias",
            "fig06b_freedom_discussion", "fig07a_gdp_per_capita",
            "fig07b_broadband", "fig08a_state_address_space",
            "fig08b_state_eyeballs", "fig09a_state_controlled",
            "fig09b_non_state_controlled", "fig10_duration_hours",
            "fig11_recurrence_days", "fig12_start_minute_utc",
            "fig13_start_minute_local", "fig14_start_hour_local",
            "fig15_weekday_pdf", "fig16_observability_pct",
        }
        assert expected <= set(figures)

    def test_cdf_series_monotone(self, figures):
        for figure_id in ("fig04_liberal_democracy",
                          "fig10_duration_hours",
                          "fig11_recurrence_days"):
            for series, points in figures[figure_id].items():
                ys = [y for _, y in points]
                assert ys == sorted(ys), (figure_id, series)
                assert ys[-1] == pytest.approx(1.0)

    def test_pdf_sums_to_one(self, figures):
        for series, points in figures["fig15_weekday_pdf"].items():
            assert sum(y for _, y in points) == pytest.approx(1.0)
            assert len(points) == 7

    def test_every_figure_has_multiple_series(self, figures):
        for figure_id, data in figures.items():
            assert len(data) >= 2, figure_id
            for series, points in data.items():
                assert points, (figure_id, series)


class TestCSVExport:
    def test_write_and_parse_back(self, pipeline_result, tmp_path):
        written = write_csvs(pipeline_result, tmp_path)
        assert len(written) >= 18
        sample = tmp_path / "fig10_duration_hours.csv"
        with sample.open(encoding="utf-8") as handle:
            rows = list(csv.DictReader(handle))
        assert {row["series"] for row in rows} == {"shutdowns", "outages"}
        assert all(float(row["y"]) <= 1.0 for row in rows)
