"""Tests for KIO↔IODA matching, labeling, and the merged dataset."""

import pytest

from repro.core.labeling import EventLabel, label_events
from repro.core.matching import EventMatcher, Match, MatchingConfig
from repro.core.merge import build_merged_dataset
from repro.errors import MatchingError
from repro.ioda.records import ConfirmationStatus, OutageRecord
from repro.kio.schema import KIOCategory, KIOEvent, NetworkType
from repro.signals.entities import EntityScope
from repro.signals.kinds import SignalKind
from repro.timeutils.timestamps import DAY, HOUR, TimeRange, utc


def make_record(record_id, iso2, start, duration_h=4, cause=None,
                scope=EntityScope.COUNTRY):
    return OutageRecord(
        record_id=record_id,
        country_iso2=iso2,
        span=TimeRange(start, start + duration_h * HOUR),
        scope=scope,
        auto_alerts={k: True for k in SignalKind},
        human_visible={k: True for k in SignalKind},
        ioda_url="https://ioda.example.org/x",
        cause=cause,
        confirmation=ConfirmationStatus.LIKELY,
        region_names=("XX-REG01",) if scope is EntityScope.REGION else (),
    )


def make_kio(event_id, name, start_day, end_day, nationwide=True,
             categories=(KIOCategory.FULL_NETWORK,)):
    return KIOEvent(
        event_id=event_id, year=2019, country_name=name,
        start_day=start_day, end_day=end_day, categories=tuple(categories),
        networks=NetworkType.BOTH, nationwide=nationwide)


class TestMatching:
    def test_window_uses_local_midnights(self, registry):
        matcher = EventMatcher(registry, MatchingConfig(lookback=0))
        day = utc(2019, 7, 28) // DAY
        event = make_kio(1, "Syria", day, day)
        window = matcher.kio_window_utc(event)
        offset = registry.get("SY").utc_offset.seconds
        assert window.start == day * DAY - offset
        assert window.end == (day + 1) * DAY - offset

    def test_match_inside_kio_dates(self, registry):
        matcher = EventMatcher(registry)
        day = utc(2019, 7, 28) // DAY
        kio = make_kio(1, "Syria", day, day + 3)
        record = make_record(10, "SY", utc(2019, 7, 29, 2))
        assert matcher.match([kio], [record]) == \
            [Match(kio_event_id=1, ioda_record_id=10)]

    def test_lookback_rescues_early_ioda_start(self, registry):
        """The paper's correction: IODA events starting up to 24 h before
        the KIO local start date still match."""
        day = utc(2018, 10, 16) // DAY
        kio = make_kio(1, "Iraq", day, day + 6)
        offset = registry.get("IQ").utc_offset.seconds
        early = make_record(10, "IQ", day * DAY - offset - 20 * HOUR)
        without = EventMatcher(registry, MatchingConfig(lookback=0))
        with_lookback = EventMatcher(registry, MatchingConfig(lookback=DAY))
        assert without.match([kio], [early]) == []
        assert with_lookback.match([kio], [early]) == \
            [Match(kio_event_id=1, ioda_record_id=10)]

    def test_no_cross_country_matches(self, registry):
        matcher = EventMatcher(registry)
        day = utc(2019, 7, 28) // DAY
        kio = make_kio(1, "Syria", day, day + 3)
        record = make_record(10, "IQ", utc(2019, 7, 29, 2))
        assert matcher.match([kio], [record]) == []

    def test_series_matches_many_ioda_events(self, registry):
        matcher = EventMatcher(registry)
        day = utc(2019, 7, 28) // DAY
        kio = make_kio(1, "Syria", day, day + 9)
        records = [make_record(10 + i, "SY", utc(2019, 7, 28 + i, 2))
                   for i in range(5)]
        matches = matcher.match([kio], records)
        assert len(matches) == 5

    def test_alias_name_resolved(self, registry):
        matcher = EventMatcher(registry)
        day = utc(2019, 7, 28) // DAY
        kio = make_kio(1, "Syrian Arab Republic", day, day)
        record = make_record(10, "SY", utc(2019, 7, 28, 5))
        assert matcher.match([kio], [record])

    def test_negative_lookback_rejected(self):
        with pytest.raises(MatchingError):
            MatchingConfig(lookback=-1)


class TestLabeling:
    def test_label_via_match(self):
        record = make_record(1, "SY", utc(2019, 7, 28, 2))
        labeled = label_events(
            [record], [Match(kio_event_id=9, ioda_record_id=1)])
        assert labeled[0].label is EventLabel.SHUTDOWN
        assert labeled[0].via_kio_match
        assert not labeled[0].via_cause
        assert labeled[0].matched_kio_ids == (9,)

    def test_label_via_cause(self):
        record = make_record(1, "SY", utc(2019, 7, 28, 2),
                             cause="Exam-related")
        labeled = label_events([record], [])
        assert labeled[0].label is EventLabel.SHUTDOWN
        assert labeled[0].via_cause and not labeled[0].via_kio_match

    def test_label_spontaneous(self):
        record = make_record(1, "TG", utc(2019, 7, 28, 2),
                             cause="Cable cut")
        labeled = label_events([record], [])
        assert labeled[0].label is EventLabel.SPONTANEOUS_OUTAGE

    def test_both_provenance_paths_recorded(self):
        record = make_record(1, "SY", utc(2019, 7, 28, 2),
                             cause="Government-ordered")
        labeled = label_events(
            [record], [Match(kio_event_id=2, ioda_record_id=1)])
        assert labeled[0].via_cause and labeled[0].via_kio_match


class TestMergedDataset:
    def _build(self, registry):
        day = utc(2019, 7, 28) // DAY
        kio_events = [
            make_kio(1, "Syria", day, day + 3),
            make_kio(2, "Iraq", day, day,
                     categories=(KIOCategory.SERVICE_BASED,)),  # filtered
            make_kio(3, "India", day, day, nationwide=False),    # filtered
        ]
        records = [
            make_record(10, "SY", utc(2019, 7, 29, 2)),
            make_record(11, "TG", utc(2019, 8, 1, 7), cause="Cable cut"),
            make_record(12, "IN", utc(2019, 7, 28, 4),
                        scope=EntityScope.REGION),               # filtered
            make_record(13, "ET", utc(2017, 6, 1, 4),
                        cause="Exam-related"),                   # pre-period
        ]
        period = TimeRange(utc(2018, 1, 1), utc(2021, 8, 1))
        return build_merged_dataset(registry, kio_events, records, period)

    def test_filters_applied(self, registry):
        merged = self._build(registry)
        assert [e.event_id for e in merged.kio_full_network] == [1]
        assert sorted(r.record_id for r in merged.ioda_records) == [10, 11]

    def test_sets_and_counts(self, registry):
        merged = self._build(registry)
        assert len(merged.ioda_shutdowns()) == 1
        assert len(merged.ioda_outages()) == 1
        assert merged.total_shutdown_events() == 1  # 1 KIO + 1 IODA - 1
        assert merged.shutdown_countries() == ["SY"]
        assert merged.outage_countries() == ["TG"]
        assert merged.kio_matched_count() == 1
        assert merged.ioda_matched_count() == 1
