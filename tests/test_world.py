"""Tests for the synthetic world generators."""

import numpy as np
import pytest

from repro.countries.registry import Archetype
from repro.errors import ConfigurationError
from repro.signals.entities import EntityScope
from repro.timeutils.timestamps import DAY, HOUR, TimeRange, utc
from repro.timeutils.timezones import (
    local_hour_of_day,
    local_minute_of_hour,
    local_weekday,
)
from repro.world.disruptions import (
    Cause,
    GroundTruthDisruption,
    RestrictionEpisode,
)
from repro.world.events import EventGenerator, EventKind
from repro.world.outages import OutageRates, SpontaneousOutageGenerator
from repro.world.profiles import ProfileGenerator
from repro.world.scenario import (
    KIO_PERIOD,
    STUDY_PERIOD,
    ScenarioConfig,
    ScenarioGenerator,
)

YEARS = (2016, 2017, 2018, 2019, 2020, 2021)


class TestDisruptionRecords:
    def test_severity_validated(self):
        with pytest.raises(ConfigurationError):
            GroundTruthDisruption(
                disruption_id=1, country_iso2="SY",
                span=TimeRange(0, HOUR), scope=EntityScope.COUNTRY,
                cause=Cause.EXAM, severity=0.0)

    def test_region_scope_needs_region(self):
        with pytest.raises(ConfigurationError):
            GroundTruthDisruption(
                disruption_id=1, country_iso2="IN",
                span=TimeRange(0, HOUR), scope=EntityScope.REGION,
                cause=Cause.GOVERNMENT_ORDERED)

    def test_intentional_flag_follows_cause(self):
        for cause, expected in [
            (Cause.GOVERNMENT_ORDERED, True),
            (Cause.EXAM, True),
            (Cause.CABLE_CUT, False),
            (Cause.POWER_OUTAGE, False),
        ]:
            disruption = GroundTruthDisruption(
                disruption_id=1, country_iso2="SY",
                span=TimeRange(0, HOUR), scope=EntityScope.COUNTRY,
                cause=cause)
            assert disruption.intentional is expected

    def test_restriction_episode_validation(self):
        with pytest.raises(ConfigurationError):
            RestrictionEpisode(1, "IR", TimeRange(0, DAY), ())
        with pytest.raises(ConfigurationError):
            RestrictionEpisode(1, "IR", TimeRange(0, DAY),
                               ("full-network",))


class TestProfiles:
    @pytest.fixture(scope="class")
    def profiles(self, registry):
        return ProfileGenerator(11, registry).generate(YEARS)

    def test_every_country_year_present(self, profiles, registry):
        assert len(profiles) == len(registry) * len(YEARS)

    def test_autocracies_score_low(self, profiles, registry):
        syria = [profiles[("SY", y)].liberal_democracy for y in YEARS]
        norway = [profiles[("NO", y)].liberal_democracy for y in YEARS]
        assert max(syria) < min(norway)

    def test_income_drives_gdp_and_broadband(self, profiles):
        rich = profiles[("CH", 2019)]
        poor = profiles[("NE", 2019)]
        assert rich.gdp_per_capita > 4 * poor.gdp_per_capita
        assert rich.broadband_fraction > poor.broadband_fraction

    def test_coup_archetype_has_powerful_military(self, profiles, registry):
        coup_scores = [profiles[(c.iso2, 2019)].military_power
                       for c in registry if c.archetype is Archetype.COUP]
        stable_scores = [profiles[(c.iso2, 2019)].military_power
                         for c in registry
                         if c.archetype is Archetype.STABLE]
        assert np.mean(coup_scores) > np.mean(stable_scores) + 0.2

    def test_many_democracies_have_zero_military_power(self, profiles,
                                                       registry):
        stable = [profiles[(c.iso2, 2019)].military_power
                  for c in registry if c.archetype is Archetype.STABLE]
        assert np.mean([s == 0.0 for s in stable]) > 0.3

    def test_year_drift_is_slow(self, profiles):
        for iso2 in ("SY", "US", "IN"):
            series = [profiles[(iso2, y)].liberal_democracy for y in YEARS]
            steps = np.abs(np.diff(series))
            assert steps.max() < 0.08

    def test_deterministic(self, registry):
        a = ProfileGenerator(11, registry).generate(YEARS)
        b = ProfileGenerator(11, registry).generate(YEARS)
        assert a[("SY", 2019)] == b[("SY", 2019)]


class TestEvents:
    @pytest.fixture(scope="class")
    def events(self, registry):
        return EventGenerator(11, registry).generate(YEARS)

    def test_all_kinds_present(self, events):
        kinds = {e.kind for e in events}
        assert kinds == {EventKind.ELECTION, EventKind.COUP,
                         EventKind.PROTEST}

    def test_coups_are_rare(self, events):
        coups = [e for e in events if e.kind is EventKind.COUP]
        assert 2 <= len(coups) <= 30

    def test_elections_follow_cycles(self, events, registry):
        for country in list(registry)[:40]:
            elections = [e for e in events
                         if e.kind is EventKind.ELECTION
                         and e.country_iso2 == country.iso2]
            # At most one election per year in the generator.
            assert len(elections) <= len(YEARS)

    def test_event_day_is_local_midnight(self, events, registry):
        for event in events[:200]:
            offset = registry.get(event.country_iso2).utc_offset
            assert local_hour_of_day(event.day_start_utc, offset) == 0
            assert local_minute_of_hour(event.day_start_utc, offset) == 0

    def test_index_by_country_sorted(self, events):
        index = EventGenerator.index_by_country(events)
        for bucket in index.values():
            times = [e.day_start_utc for e in bucket]
            assert times == sorted(times)


class TestOutages:
    def test_rates_scale_with_fragility(self, registry, scenario):
        generator = SpontaneousOutageGenerator(
            11, registry, scenario.topology)
        outages = generator.generate(STUDY_PERIOD)
        fragile = {c.iso2 for c in registry
                   if c.archetype is Archetype.FRAGILE}
        stable = {c.iso2 for c in registry
                  if c.archetype is Archetype.STABLE}
        fragile_count = sum(1 for o in outages
                            if o.country_iso2 in fragile)
        stable_count = sum(1 for o in outages if o.country_iso2 in stable)
        assert fragile_count / max(1, len(fragile)) > \
            3 * stable_count / max(1, len(stable))

    def test_outages_never_intentional(self, registry, scenario):
        generator = SpontaneousOutageGenerator(
            11, registry, scenario.topology)
        for outage in generator.generate(STUDY_PERIOD):
            assert not outage.intentional
            assert STUDY_PERIOD.contains(outage.span.start)

    def test_duration_median_near_two_hours(self, registry, scenario):
        generator = SpontaneousOutageGenerator(
            11, registry, scenario.topology)
        durations = [o.duration_hours
                     for o in generator.generate(STUDY_PERIOD)]
        assert 1.0 < np.median(durations) < 4.0

    def test_custom_rates(self, registry, scenario):
        quiet = SpontaneousOutageGenerator(
            11, registry, scenario.topology,
            rates=OutageRates(base_rate=0.01, fragility_rate=0.01))
        assert len(quiet.generate(STUDY_PERIOD)) < 100


class TestScenario:
    def test_periods(self):
        assert STUDY_PERIOD.start == utc(2018, 1, 1)
        assert STUDY_PERIOD.end == utc(2021, 8, 1)
        assert KIO_PERIOD.start == utc(2016, 1, 1)

    def test_scenario_reproducible(self, scenario):
        again = ScenarioGenerator(
            ScenarioConfig(seed=scenario.seed)).generate()
        assert len(again.shutdowns) == len(scenario.shutdowns)
        assert len(again.outages) == len(scenario.outages)
        assert again.shutdowns[0].span == scenario.shutdowns[0].span

    def test_headline_counts_in_paper_regime(self, scenario):
        shutdowns = [d for d in scenario.shutdowns
                     if STUDY_PERIOD.contains(d.span.start)
                     and d.scope is EntityScope.COUNTRY]
        outages = [d for d in scenario.outages
                   if STUDY_PERIOD.contains(d.span.start)]
        assert 120 <= len(shutdowns) <= 400
        assert 450 <= len(outages) <= 1100

    def test_shutdown_fingerprints(self, scenario, registry):
        """Ground-truth shutdowns carry the §5.3 human fingerprints."""
        shutdowns = [d for d in scenario.shutdowns
                     if d.scope is EntityScope.COUNTRY]
        on_hour = 0
        for disruption in shutdowns:
            offset = registry.get(disruption.country_iso2).utc_offset
            if local_minute_of_hour(disruption.span.start, offset) == 0:
                on_hour += 1
        assert on_hour / len(shutdowns) > 0.7

    def test_exam_shutdowns_avoid_weekends(self, scenario, registry):
        exams = [d for d in scenario.shutdowns if d.cause is Cause.EXAM]
        assert exams
        for disruption in exams:
            country = registry.get(disruption.country_iso2)
            weekday = local_weekday(disruption.span.start,
                                    country.utc_offset)
            assert country.workweek.is_workday(weekday)

    def test_subnational_events_concentrated_in_india(self, scenario):
        regional = [d for d in scenario.shutdowns
                    if d.scope is EntityScope.REGION]
        assert regional
        india = sum(1 for d in regional if d.country_iso2 == "IN")
        assert india / len(regional) > 0.8
        mobile = sum(1 for d in regional if d.mobile_only)
        assert 0.5 < mobile / len(regional) < 0.9

    def test_artifacts_generated(self, scenario):
        assert len(scenario.artifacts) == scenario.config.n_artifacts
        for artifact in scenario.artifacts:
            assert STUDY_PERIOD.overlaps(artifact.span)

    def test_restrictions_have_no_full_network(self, scenario):
        for episode in scenario.restrictions:
            assert "full-network" not in episode.restrictions

    def test_disruptions_in_filters(self, scenario):
        syria = scenario.disruptions_in(STUDY_PERIOD, country_iso2="SY")
        assert syria
        assert all(d.country_iso2 == "SY" for d in syria)
