"""Tests for the memoized signal cache and worker-resident worlds.

The guarantees under test, in rough order of importance:

- **Byte-identity.**  A cached run produces byte-identical records to a
  cold (cache-off) run on every backend — the cache is a pure
  memoization, never a semantic change.
- **Mutation safety.**  Returned ``TimeSeries`` objects are private to
  the caller; the platform's in-place artifact rounding (or a hostile
  caller) can never corrupt a cached entry.
- **Bounded LRU.**  The store never exceeds its bound, evicts in
  recency order, and counts hits/misses/evictions both locally and
  into the active observability session.
- **Worker residency.**  The process backend builds the scenario and
  platform at most once per worker process per run (asserted through
  the per-pid ``exec.worker.world_builds`` gauges).
- **Chaos hygiene.**  An active fault plan bypasses the cache in both
  directions, mirroring the shard-cache rule.
"""

import json
import threading

import numpy as np
import pytest

import repro.api as api
from repro import io
from repro.errors import ConfigurationError
from repro.exec import ExecutorConfig
from repro.exec.workers import _curate_shard
from repro.ioda.curation import CurationConfig, CurationPipeline
from repro.ioda.platform import IODAPlatform, PlatformConfig
from repro.ioda.signalcache import DEFAULT_SIGNAL_CACHE_SIZE, SignalCache
from repro.obs import Observability
from repro.obs.runtime import activate
from repro.resilience import FaultPlan, inject
from repro.signals.entities import Entity
from repro.signals.kinds import SignalKind
from repro.signals.series import TimeSeries
from repro.timeutils.timestamps import DAY, HOUR, TimeRange, utc
from repro.world.scenario import ScenarioConfig, ScenarioGenerator

SMALL_CONFIG = ScenarioConfig(seed=7, years=(2018,))
SMALL_PERIOD = TimeRange(utc(2018, 1, 1), utc(2018, 7, 1))

WINDOW = TimeRange(utc(2018, 3, 1), utc(2018, 3, 3))


def _record_bytes(records):
    return json.dumps([io.record_to_dict(r) for r in records],
                      sort_keys=True)


def _series(fill=1.0, n=8):
    return TimeSeries(0, 300, np.full(n, fill))


# -- the cache itself -----------------------------------------------------------


class TestSignalCacheUnit:
    def test_size_validation(self):
        with pytest.raises(ConfigurationError):
            SignalCache(0)
        with pytest.raises(ConfigurationError):
            SignalCache(-3)
        assert SignalCache().maxsize == DEFAULT_SIGNAL_CACHE_SIZE

    def test_miss_then_hit_shares_one_factory_call(self):
        cache = SignalCache(4)
        calls = []
        factory = lambda: calls.append(1) or _series(2.5)
        first = cache.get_or_create(("k",), factory)
        second = cache.get_or_create(("k",), factory)
        assert len(calls) == 1
        assert np.array_equal(first.values, second.values)
        assert (cache.hits, cache.misses) == (1, 1)

    def test_returned_series_is_private(self):
        """Mutating any returned series never changes later bytes."""
        cache = SignalCache(4)
        first = cache.get_or_create(("k",), _series)
        first.values[:] = -99.0  # the platform's artifact step does this
        second = cache.get_or_create(("k",), lambda: _series(0.0))
        assert np.array_equal(second.values, np.full(8, 1.0))
        second.values[:] = 7.0
        third = cache.get_or_create(("k",), lambda: _series(0.0))
        assert np.array_equal(third.values, np.full(8, 1.0))
        assert second.values is not third.values

    def test_lru_evicts_oldest_at_the_bound(self):
        cache = SignalCache(2)
        for key in ("a", "b", "c"):
            cache.get_or_create((key,), _series)
        assert len(cache) == 2
        assert cache.evictions == 1
        calls = []
        cache.get_or_create(("a",), lambda: calls.append(1) or _series())
        assert calls, "oldest entry should have been evicted"

    def test_lru_recency_order(self):
        cache = SignalCache(2)
        cache.get_or_create(("a",), _series)
        cache.get_or_create(("b",), _series)
        cache.get_or_create(("a",), _series)   # refresh a
        cache.get_or_create(("c",), _series)   # evicts b, not a
        hits_before = cache.hits
        cache.get_or_create(("a",), _series)
        assert cache.hits == hits_before + 1
        calls = []
        cache.get_or_create(("b",), lambda: calls.append(1) or _series())
        assert calls, "b was the least recently used entry"

    def test_counters_flow_into_obs_metrics(self):
        obs = Observability()
        with activate(obs):
            cache = SignalCache(1)
            cache.get_or_create(("a",), _series)      # miss
            cache.get_or_create(("a",), _series)      # hit
            cache.get_or_create(("b",), _series)      # miss + eviction
        counters = obs.metrics.snapshot()["counters"]
        assert counters["platform.signal.cache.hits"] == 1
        assert counters["platform.signal.cache.misses"] == 2
        assert counters["platform.signal.cache.evictions"] == 1
        assert (cache.hits, cache.misses, cache.evictions) == (1, 2, 1)

    def test_single_flight_same_key(self):
        cache = SignalCache(4)
        calls = []
        started = threading.Barrier(6)

        def factory():
            calls.append(1)
            return _series()

        def query():
            started.wait()
            cache.get_or_create(("k",), factory)

        threads = [threading.Thread(target=query) for _ in range(6)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(calls) == 1
        assert cache.misses == 1
        assert cache.hits == 5

    def test_failures_are_never_cached(self):
        cache = SignalCache(4)

        def boom():
            raise RuntimeError("generation failed")

        with pytest.raises(RuntimeError):
            cache.get_or_create(("k",), boom)
        assert len(cache) == 0
        # A later caller becomes the owner and succeeds.
        series = cache.get_or_create(("k",), _series)
        assert np.array_equal(series.values, np.full(8, 1.0))


# -- the platform integration ---------------------------------------------------


class TestPlatformSignalCache:
    def test_repeat_query_hits_and_matches(self, scenario):
        platform = IODAPlatform(scenario)
        entity = Entity.country("SY")
        first = platform.signal(entity, SignalKind.TELESCOPE, WINDOW)
        second = platform.signal(entity, SignalKind.TELESCOPE, WINDOW)
        assert np.array_equal(first.values, second.values)
        assert first.values is not second.values
        assert platform.signal_cache.hits == 1

    def test_cached_equals_uncached_bytes(self, scenario):
        cached = IODAPlatform(scenario)
        uncached = IODAPlatform(scenario, signal_cache_size=0)
        assert uncached.signal_cache is None
        for kind in SignalKind:
            entity = Entity.country("IR")
            a = cached.signal(entity, kind, WINDOW)
            b = cached.signal(entity, kind, WINDOW)   # served from cache
            c = uncached.signal(entity, kind, WINDOW)
            assert a.values.tobytes() == c.values.tobytes(), kind
            assert b.values.tobytes() == c.values.tobytes(), kind

    def test_caller_mutation_cannot_corrupt_later_queries(self, scenario):
        platform = IODAPlatform(scenario)
        entity = Entity.country("IN")
        pristine = IODAPlatform(scenario, signal_cache_size=0).signal(
            entity, SignalKind.BGP, WINDOW)
        victim = platform.signal(entity, SignalKind.BGP, WINDOW)
        victim.values[:] = -1.0
        again = platform.signal(entity, SignalKind.BGP, WINDOW)
        assert again.values.tobytes() == pristine.values.tobytes()

    def test_as_query_shares_the_country_entry(self, scenario):
        platform = IODAPlatform(scenario)
        network = scenario.topology.get("SY")
        asn = int(network.ases[0].asn)
        platform.signal(Entity.country("SY"), SignalKind.BGP, WINDOW)
        hits_before = platform.signal_cache.hits
        platform.signal(Entity.asn(asn), SignalKind.BGP, WINDOW)
        assert platform.signal_cache.hits == hits_before + 1

    def test_negative_size_rejected(self, scenario):
        with pytest.raises(ConfigurationError):
            IODAPlatform(scenario, signal_cache_size=-1)
        with pytest.raises(ConfigurationError):
            ExecutorConfig(signal_cache_size=-1)

    def test_chaos_runs_bypass_the_cache(self, scenario):
        """An active fault plan must neither read nor seed the cache."""
        platform = IODAPlatform(scenario)
        entity = Entity.country("SY")
        # Seed an entry from a clean query first.
        clean = platform.signal(entity, SignalKind.TELESCOPE, WINDOW)
        plan = FaultPlan.parse("fail_first=1;sites=no.such.site")
        with inject(plan):
            chaotic = platform.signal(entity, SignalKind.TELESCOPE, WINDOW)
            assert platform.signal_cache.hits == 0
        # Fault hooks are inert outside their scope, so the bypassed
        # generation still reproduces the clean bytes.
        assert chaotic.values.tobytes() == clean.values.tobytes()


# -- the executor integration ---------------------------------------------------


@pytest.fixture(scope="module")
def cold_run():
    """Serial, signal cache disabled: the byte-identity baseline."""
    run = api.run(
        scenario_config=SMALL_CONFIG, study_period=SMALL_PERIOD,
        workers=1, backend="serial", signal_cache_size=0)
    return run.events, run.stats


@pytest.fixture(scope="module")
def cold_bytes(cold_run):
    result, stats = cold_run
    assert stats.signal_cache_hits == 0
    assert stats.signal_cache_misses == 0
    return _record_bytes(result.curated_records)


class TestExecutorSignalCache:
    def test_serial_cached_run_is_byte_identical(self, cold_bytes):
        run = api.run(
            scenario_config=SMALL_CONFIG, study_period=SMALL_PERIOD,
            workers=1, backend="serial")
        result, stats = run.events, run.stats
        assert _record_bytes(result.curated_records) == cold_bytes
        assert stats.signal_cache_hits > 0
        report = stats.as_dict()["signal_cache"]
        assert report["hits"] == stats.signal_cache_hits
        assert report["misses"] == stats.signal_cache_misses

    def test_thread_cached_run_is_byte_identical(self, cold_bytes):
        run = api.run(
            scenario_config=SMALL_CONFIG, study_period=SMALL_PERIOD,
            workers=4, backend="thread")
        result, stats = run.events, run.stats
        assert _record_bytes(result.curated_records) == cold_bytes
        assert stats.signal_cache_hits > 0

    def test_process_cached_run_is_byte_identical_and_resident(
            self, cold_bytes):
        """Process workers share one world each and still hit the cache."""
        obs = Observability()
        run = api.run(
            scenario_config=SMALL_CONFIG, study_period=SMALL_PERIOD,
            workers=2, backend="process", observability=obs)
        result, stats = run.events, run.stats
        assert _record_bytes(result.curated_records) == cold_bytes
        assert stats.signal_cache_hits > 0
        builds = {key: value
                  for key, value in obs.metrics.snapshot()["gauges"].items()
                  if key.startswith("exec.worker.world_builds")}
        assert builds, "process workers should report world-build gauges"
        assert 1 <= len(builds) <= 2
        assert all(value == 1.0 for value in builds.values()), builds

    def test_shard_restricted_windows_match_full_map(self):
        """A shard given only its own windows curates identical records."""
        scenario = ScenarioGenerator(SMALL_CONFIG).generate()
        platform = IODAPlatform(scenario, signal_cache_size=0)
        pipeline = CurationPipeline(platform, CurationConfig())
        windows = pipeline.country_windows(SMALL_PERIOD)
        iso2 = sorted(windows)[0]
        restricted = _curate_shard(
            scenario, PlatformConfig(), CurationConfig(), SMALL_PERIOD,
            (iso2,), windows={iso2: windows[iso2]}, platform=platform)
        recomputed = _curate_shard(
            scenario, PlatformConfig(), CurationConfig(), SMALL_PERIOD,
            (iso2,), platform=platform)
        assert restricted == recomputed
        (shard_iso2, records), = restricted[0]
        assert shard_iso2 == iso2
