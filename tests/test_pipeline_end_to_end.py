"""End-to-end integration tests over the full pipeline.

These assert the headline *shapes* of the paper against the complete run:
who wins, by roughly what factor, and where the qualitative crossovers
fall.  Exact values are recorded in EXPERIMENTS.md.
"""

import time

import numpy as np
import pytest

from repro.analysis import (
    analyze_temporal,
    group_country_years,
    institution_distributions,
    kio_trends,
    mobilization_table,
    observability_table,
    summarize_merged,
)
from repro.analysis.country_year import CountryYearGroup
from repro.core.pipeline import ReproPipeline
from repro.signals.entities import EntityScope
from repro.world.scenario import STUDY_PERIOD, ScenarioConfig

YEARS = [2018, 2019, 2020, 2021]


class TestGroundTruthRecovery:
    def test_labels_agree_with_ground_truth(self, pipeline_result):
        """The pipeline's shutdown/outage labels, derived purely from
        observed data, must agree with ground truth for nearly all
        events."""
        scenario = pipeline_result.scenario
        merged = pipeline_result.merged
        agreements = 0
        total = 0
        for event in merged.labeled:
            record = event.record
            overlapping = [
                d for d in scenario.all_disruptions()
                if d.country_iso2 == record.country_iso2
                and d.span.overlaps(record.span.expand(
                    before=3600, after=3600))]
            if not overlapping:
                continue
            truth = max(overlapping, key=lambda d: d.severity)
            total += 1
            if truth.intentional == event.is_shutdown:
                agreements += 1
        assert total > 0.9 * len(merged.labeled)
        assert agreements / total > 0.9

    def test_detection_recall_for_blackouts(self, pipeline_result):
        """Nearly every non-mobile country-level blackout is curated."""
        scenario = pipeline_result.scenario
        records = [r for r in pipeline_result.curated_records
                   if r.scope is EntityScope.COUNTRY]
        spans_by_country = {}
        for record in records:
            spans_by_country.setdefault(
                record.country_iso2, []).append(record.span)
        truth = [d for d in scenario.country_level_disruptions(STUDY_PERIOD)
                 if not d.mobile_only and d.severity >= 0.9
                 and d.span.duration >= 3600]
        detected = sum(
            1 for d in truth
            if any(span.overlaps(d.span)
                   for span in spans_by_country.get(d.country_iso2, [])))
        assert detected / len(truth) > 0.9


class TestHeadlineShapes:
    def test_table2_shape(self, pipeline_result):
        table = summarize_merged(pipeline_result.merged)
        assert table.outage_total > 2.5 * table.ioda_shutdown_total
        assert table.n_shutdown_countries >= 15
        assert table.n_outage_countries >= 120

    def test_table3_shape(self, pipeline_result):
        counts = group_country_years(
            pipeline_result.merged, YEARS).counts()
        assert counts[CountryYearGroup.SHUTDOWNS] < \
            counts[CountryYearGroup.OUTAGES] < \
            counts[CountryYearGroup.NEITHER]

    def test_figure4_shape(self, pipeline_result):
        table = group_country_years(pipeline_result.merged, YEARS)
        dists = institution_distributions(
            table, pipeline_result.merged.registry, pipeline_result.vdem,
            pipeline_result.worldbank)
        libdem = dists["liberal_democracy"]
        assert libdem.median(CountryYearGroup.SHUTDOWNS) < 0.3
        assert libdem.median(CountryYearGroup.NEITHER) > 0.45

    def test_table4_shape(self, pipeline_result):
        table = mobilization_table(
            pipeline_result.merged, pipeline_result.coups,
            pipeline_result.elections, pipeline_result.protests)
        assert table.risk_ratio("coup") > table.risk_ratio("election")
        assert table.risk_ratio("election") > 3
        assert table.risk_ratio("protest") > 3

    def test_figures_10_to_15_shape(self, pipeline_result):
        analysis = analyze_temporal(pipeline_result.merged)
        shutdowns, outages = analysis.shutdowns, analysis.outages
        assert shutdowns.durations_h.median > outages.durations_h.median
        assert shutdowns.intervals_days.median < 5
        assert outages.intervals_days.median > 20
        assert shutdowns.frac_on_hour_local > 3 * outages.frac_on_hour_local
        assert shutdowns.weekday_pdf[4] < 1 / 7 < max(shutdowns.weekday_pdf)

    def test_figure16_shape(self, pipeline_result):
        table = observability_table(pipeline_result.merged)
        assert table.shutdown_all_pct > table.outage_all_pct + 15

    def test_figure2_shape(self, pipeline_result):
        trends = kio_trends(pipeline_result.kio_events)
        peak_year = max(trends.totals, key=trends.totals.get)
        assert peak_year >= 2018


class TestPipelineMechanics:
    def test_cache_reload_is_identical(self, pipeline_result, tmp_path):
        from repro import io
        path = tmp_path / "records.json"
        io.dump_records(pipeline_result.curated_records, path)
        assert io.load_records(path) == pipeline_result.curated_records

    def test_stages_runnable_independently(self):
        pipeline = ReproPipeline(
            scenario_config=ScenarioConfig(seed=99))
        scenario = pipeline.build_scenario()
        kio = pipeline.compile_kio(scenario)
        assert kio
        assert scenario.seed == 99

    def test_pipeline_deterministic_given_cache(self, pipeline_result):
        ids = [r.record_id for r in pipeline_result.curated_records]
        assert len(ids) == len(set(ids))
        starts = [r.span.start for r in pipeline_result.curated_records]
        assert starts == sorted(starts)
