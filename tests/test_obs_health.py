"""Unit tests for repro.obs profiling, health checks, and perf baselines."""

import json
import tracemalloc

import pytest

from repro.obs import (
    HealthCheck,
    HealthPolicy,
    HealthReport,
    Observability,
    PerfBaseline,
    ProfileConfig,
    SpanProfiler,
    Tracer,
    activate,
    compare_baselines,
    default_policy,
    list_baselines,
    load_baseline,
    read_journal,
    save_baseline,
    trajectory_rows,
)
from repro.obs.health import CheckResult


# -- profiling ------------------------------------------------------------------


class TestSpanProfiler:
    def test_config_rejects_bad_depth(self):
        with pytest.raises(ValueError):
            ProfileConfig(tracemalloc=True, tracemalloc_depth=0)

    def test_begin_end_reports_cpu_and_rss(self):
        profiler = SpanProfiler().install()
        readings = profiler.begin()
        sum(i * i for i in range(20_000))  # burn some CPU
        profile = profiler.end(readings)
        profiler.uninstall()
        assert profile["cpu_s"] >= 0.0
        assert profile["rss_peak_kb"] >= 0.0
        assert "alloc_net_kb" not in profile

    def test_tracemalloc_sampling_is_scoped_to_install(self):
        assert not tracemalloc.is_tracing()
        profiler = SpanProfiler(
            ProfileConfig(tracemalloc=True, tracemalloc_depth=1)).install()
        try:
            assert tracemalloc.is_tracing()
            readings = profiler.begin()
            blob = [bytes(1024) for _ in range(64)]
            profile = profiler.end(readings)
            assert profile["alloc_net_kb"] > 0
            assert profile["alloc_peak_kb"] >= profile["alloc_net_kb"]
            del blob
        finally:
            profiler.uninstall()
        assert not tracemalloc.is_tracing()

    def test_uninstall_is_idempotent_and_respects_foreign_tracing(self):
        tracemalloc.start()
        try:
            profiler = SpanProfiler(
                ProfileConfig(tracemalloc=True)).install()
            profiler.uninstall()
            profiler.uninstall()
            # The profiler didn't start tracing, so it must not stop it.
            assert tracemalloc.is_tracing()
        finally:
            tracemalloc.stop()

    def test_unprofiled_tracer_records_no_profile_attr(self):
        tracer = Tracer()
        with tracer.span("plain"):
            pass
        assert "profile" not in tracer.spans()[0].attrs

    def test_profiled_session_attaches_readings_and_journals_them(
            self, tmp_path):
        path = tmp_path / "run.jsonl"
        obs = Observability(journal=path, profile=True)
        with activate(obs):
            with obs.span("work"):
                sum(range(10_000))
        obs.finish()
        record = obs.tracer.spans()[0]
        assert set(record.attrs["profile"]) == {"cpu_s", "rss_peak_kb"}
        events = read_journal(path)
        profile_events = [e for e in events if e["type"] == "profile"]
        assert len(profile_events) == 1
        assert profile_events[0]["name"] == "work"
        assert profile_events[0]["profile"] == record.attrs["profile"]

    def test_finish_uninstalls_the_profiler(self):
        obs = Observability(
            profile=ProfileConfig(tracemalloc=True, tracemalloc_depth=1))
        assert tracemalloc.is_tracing()
        obs.finish()
        assert not tracemalloc.is_tracing()


# -- health checks --------------------------------------------------------------


class TestHealthCheck:
    def test_relative_grading_bands(self):
        check = HealthCheck(name="x", target=100, warn=0.1, fail=0.5)
        assert check.grade(105).grade == "pass"
        assert check.grade(130).grade == "warn"
        assert check.grade(10).grade == "fail"

    def test_ceiling_only_penalizes_overshoot(self):
        check = HealthCheck(name="x", target=10, warn=0, fail=5,
                            mode="ceiling")
        assert check.grade(3).grade == "pass"
        assert check.grade(12).grade == "warn"
        assert check.grade(16).grade == "fail"

    def test_info_always_passes(self):
        check = HealthCheck(name="x", mode="info")
        assert check.grade(1e9).grade == "pass"

    def test_missing_value_warns(self):
        result = HealthCheck(name="x", target=1).grade(None)
        assert result.grade == "warn"
        assert result.value is None

    def test_validation(self):
        with pytest.raises(ValueError):
            HealthCheck(name="x", mode="bogus")
        with pytest.raises(ValueError):
            HealthCheck(name="x", warn=0.5, fail=0.1)

    def test_result_roundtrip(self):
        result = HealthCheck(name="x", target=3, warn=0.1,
                             fail=0.2, note="n").grade(3.1)
        assert CheckResult.from_dict(result.as_dict()) == result


class TestHealthPolicy:
    def test_worst_grade_wins(self):
        policy = HealthPolicy(checks=(
            HealthCheck(name="a", target=10, warn=0.1, fail=0.5),
            HealthCheck(name="b", target=10, warn=0.1, fail=0.5),
        ))
        report = policy.evaluate({"a": 10, "b": 2})
        assert report.grade == "fail"
        assert [r.grade for r in report.results] == ["pass", "fail"]
        assert len(report.failed) == 1 and not report.warned

    def test_empty_policy_passes(self):
        assert HealthPolicy().evaluate({}).grade == "pass"

    def test_report_roundtrips_through_the_journal_event(self):
        policy = HealthPolicy(checks=(
            HealthCheck(name="a", target=10, warn=0.1, fail=0.5),))
        report = policy.evaluate({"a": 9.5, "extra": 1.0})
        event = report.as_event()
        assert event["type"] == "health"
        replayed = HealthReport.from_dict(
            json.loads(json.dumps(event)))
        assert replayed.grade == report.grade
        assert replayed.stats == {"a": 9.5, "extra": 1.0}
        assert [r.as_dict() for r in replayed.results] \
            == [r.as_dict() for r in report.results]

    def test_rows_render_every_check(self):
        report = default_policy().evaluate({})
        text = "\n".join(report.rows())
        assert "events.union_shutdowns" in text
        assert "cache.hit_rate" in text

    def test_default_policy_covers_the_paper_headlines(self):
        names = {c.name for c in default_policy().checks}
        assert {"events.union_shutdowns", "events.spontaneous_outages",
                "countries.shutdown", "countries.outage",
                "match.kio_matched_fraction",
                "resilience.quarantined"} <= names


# -- perf baselines -------------------------------------------------------------


def _statistics(total=10.0, curate=8.0, records=278.0, shutdowns=53.0):
    return {
        "events.union_shutdowns": shutdowns,
        "records.curated": records,
        "perf.total_seconds": total,
        "perf.stage_seconds.curate": curate,
        "cache.hit_rate": 1.0,
    }


def _baseline(name="base", **kwargs):
    return PerfBaseline.capture(
        name=name, config={"seed": 2023, "backend": "thread"},
        statistics=_statistics(**kwargs), health_grade="pass")


class TestPerfBaseline:
    def test_capture_splits_perf_from_fidelity(self):
        baseline = _baseline()
        assert set(baseline.fidelity) == {"events.union_shutdowns",
                                          "records.curated"}
        assert set(baseline.perf) == {"perf.total_seconds",
                                      "perf.stage_seconds.curate",
                                      "cache.hit_rate"}

    def test_save_load_roundtrip(self, tmp_path):
        baseline = _baseline()
        path = save_baseline(baseline, tmp_path / "base.json")
        loaded = load_baseline(path)
        assert loaded.as_dict() == baseline.as_dict()
        assert loaded.name == "base"
        assert loaded.version == 1

    def test_list_baselines_skips_unreadable_files(self, tmp_path):
        save_baseline(_baseline("a"), tmp_path / "a.json")
        (tmp_path / "junk.json").write_text("not json", encoding="utf-8")
        names = [b.name for b in list_baselines(tmp_path)]
        assert names == ["a"]

    def test_identical_runs_compare_ok(self):
        comparison = compare_baselines(_baseline("now"), _baseline())
        assert comparison.ok
        assert not comparison.regressions

    def test_faster_run_is_never_a_regression(self):
        comparison = compare_baselines(
            _baseline("now", total=1.0, curate=0.5), _baseline(),
            tolerance=0.0, min_seconds=0.0)
        assert comparison.ok
        assert {e.status for e in comparison.entries
                if e.name.startswith("perf.")} == {"improved"}

    def test_slower_run_regresses_when_bands_are_tight(self):
        comparison = compare_baselines(
            _baseline("now", total=20.0), _baseline(total=10.0),
            tolerance=0.0, min_seconds=0.0)
        assert not comparison.ok
        assert any(e.name == "perf.total_seconds"
                   and e.status == "regression"
                   for e in comparison.regressions)

    def test_bands_absorb_machine_speed_differences(self):
        # 2x slower total is within the default 50% band at tolerance 2.
        comparison = compare_baselines(
            _baseline("now", total=19.0, curate=15.0),
            _baseline(total=10.0, curate=8.0), tolerance=2.0)
        assert comparison.ok

    def test_fidelity_drift_always_regresses(self):
        comparison = compare_baselines(
            _baseline("now", shutdowns=52.0), _baseline(),
            tolerance=100.0, min_seconds=100.0)
        assert not comparison.ok
        assert any(e.kind == "fidelity" for e in comparison.regressions)

    def test_config_mismatch_regresses(self):
        other = PerfBaseline.capture(
            name="now", config={"seed": 7, "backend": "thread"},
            statistics=_statistics())
        comparison = compare_baselines(other, _baseline())
        assert any(e.name == "config.seed" for e in comparison.regressions)

    def test_missing_perf_metric_regresses(self):
        stats = _statistics()
        del stats["perf.stage_seconds.curate"]
        current = PerfBaseline.capture(
            name="now", config={"seed": 2023, "backend": "thread"},
            statistics=stats)
        comparison = compare_baselines(current, _baseline())
        assert any(e.status == "missing" for e in comparison.regressions)

    def test_cache_counters_are_trend_only(self):
        comparison = compare_baselines(
            _baseline("now"), _baseline(), tolerance=0.0, min_seconds=0.0)
        cache = [e for e in comparison.entries
                 if e.name == "cache.hit_rate"]
        assert cache and cache[0].status == "ok" \
            and cache[0].limit is None

    def test_comparison_rows_render(self):
        rows = compare_baselines(_baseline("now"), _baseline()).rows()
        assert "OK" in rows[0]
        assert any("perf.total_seconds" in row for row in rows)

    def test_trajectory_rows(self, tmp_path):
        save_baseline(_baseline("a"), tmp_path / "a.json")
        save_baseline(_baseline("b", total=5.0), tmp_path / "b.json")
        rows = trajectory_rows(list_baselines(tmp_path))
        assert "name" in rows[0]
        assert any(row.startswith("a ") for row in rows)
        assert any(row.startswith("b ") for row in rows)
        assert trajectory_rows([]) == ["no baselines recorded"]
