"""Tests for the BGP substrate: collectors, streams, and the view."""

import numpy as np
import pytest

from repro.bgp.collector import Collector, ReachabilityTimeline
from repro.bgp.messages import BGPUpdate, RouteTable, UpdateType
from repro.bgp.peers import FULL_FEED_IPV4_THRESHOLD, PeerSpec, \
    full_feed_peers
from repro.bgp.stream import BGPStream
from repro.bgp.view import BGPView, visible_slash24_series
from repro.errors import ConfigurationError, SignalError
from repro.net.ipv4 import parse_prefix
from repro.rng import substream
from repro.timeutils.timestamps import FIVE_MINUTES, HOUR, TimeRange


def make_peers(collector="rv1", count=8, full=True):
    size = FULL_FEED_IPV4_THRESHOLD + 1 if full else 1000
    return [PeerSpec(peer_id=i, collector=collector, asn=64500 + i,
                     ipv4_prefix_count=size, miss_rate=0.0)
            for i in range(count)]


PREFIXES = tuple(parse_prefix(p) for p in
                 ("10.0.0.0/22", "10.0.4.0/23", "10.0.8.0/24"))


class TestRouteTable:
    def test_announce_withdraw(self):
        table = RouteTable()
        update = BGPUpdate(0, "rv1", 1, UpdateType.ANNOUNCE, PREFIXES[0],
                           origin_asn=65001)
        table.apply(update)
        assert PREFIXES[0] in table
        assert table.origin(PREFIXES[0]) == 65001
        assert table.slash24_count() == 4
        table.apply(BGPUpdate(1, "rv1", 1, UpdateType.WITHDRAW, PREFIXES[0]))
        assert PREFIXES[0] not in table
        assert table.slash24_count() == 0

    def test_withdraw_unknown_prefix_is_noop(self):
        table = RouteTable()
        table.apply(BGPUpdate(0, "rv1", 1, UpdateType.WITHDRAW, PREFIXES[0]))
        assert len(table) == 0


class TestPeers:
    def test_full_feed_threshold(self):
        assert make_peers(full=True)[0].full_feed
        assert not make_peers(full=False)[0].full_feed

    def test_full_feed_filter(self):
        peers = make_peers(count=3) + make_peers(count=2, full=False)
        assert len(full_feed_peers(peers)) == 3

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            PeerSpec(1, "rv1", 65000, 1000, miss_rate=1.5)


class TestCollector:
    def test_requires_peers(self):
        with pytest.raises(ConfigurationError):
            Collector("rv1", [], seed=1)

    def test_peer_collector_mismatch(self):
        with pytest.raises(ConfigurationError):
            Collector("rv1", make_peers(collector="rv2"), seed=1)

    def test_initial_announcements_then_withdrawals(self):
        window = TimeRange(0, 2 * HOUR)
        timeline = ReachabilityTimeline(window=window, prefixes=PREFIXES)
        timeline.mark_down([PREFIXES[0]], TimeRange(HOUR, 2 * HOUR))
        collector = Collector("rv1", make_peers(count=4), seed=1,
                              propagation_jitter_s=0)
        updates = collector.updates(timeline)
        announces = [u for u in updates if u.time == 0]
        assert len(announces) == 4 * len(PREFIXES)
        withdrawals = [u for u in updates
                       if u.update_type is UpdateType.WITHDRAW]
        assert len(withdrawals) == 4
        assert all(u.time == HOUR for u in withdrawals)

    def test_recovery_reannounces(self):
        window = TimeRange(0, 3 * HOUR)
        timeline = ReachabilityTimeline(window=window, prefixes=PREFIXES)
        timeline.mark_down([PREFIXES[1]], TimeRange(HOUR, 2 * HOUR))
        collector = Collector("rv1", make_peers(count=2), seed=1,
                              propagation_jitter_s=0)
        updates = collector.updates(timeline)
        reannounce = [u for u in updates
                      if u.update_type is UpdateType.ANNOUNCE
                      and u.time == 2 * HOUR]
        assert len(reannounce) == 2

    def test_updates_time_ordered(self):
        window = TimeRange(0, 2 * HOUR)
        timeline = ReachabilityTimeline(window=window, prefixes=PREFIXES)
        timeline.mark_down(PREFIXES, TimeRange(HOUR, 2 * HOUR))
        collector = Collector("rv1", make_peers(count=4), seed=1)
        updates = collector.updates(timeline)
        times = [u.time for u in updates]
        assert times == sorted(times)


class TestSessionFlaps:
    def test_flap_withdraws_and_recovers_whole_table(self):
        window = TimeRange(0, 2 * 24 * HOUR)
        timeline = ReachabilityTimeline(window=window, prefixes=PREFIXES)
        flappy = [PeerSpec(peer_id=0, collector="rv1", asn=64500,
                           ipv4_prefix_count=FULL_FEED_IPV4_THRESHOLD + 1,
                           miss_rate=0.0, session_flap_rate=1.0)]
        collector = Collector("rv1", flappy, seed=3,
                              propagation_jitter_s=0)
        updates = collector.updates(timeline)
        withdrawals = [u for u in updates
                       if u.update_type is UpdateType.WITHDRAW]
        # At least one flap: every carried prefix withdrawn together.
        assert withdrawals
        flap_time = withdrawals[0].time
        simultaneous = [u for u in withdrawals if u.time == flap_time]
        assert len(simultaneous) == len(PREFIXES)
        # Re-announcements follow within minutes.
        reannounce = [u for u in updates
                      if u.update_type is UpdateType.ANNOUNCE
                      and flap_time < u.time <= flap_time + 600]
        assert len(reannounce) >= len(PREFIXES)

    def test_quorum_absorbs_single_peer_flap(self):
        """One flapping peer among eight must not move the visible count."""
        window = TimeRange(0, 24 * HOUR)
        timeline = ReachabilityTimeline(window=window, prefixes=PREFIXES)
        peers = make_peers(count=8)
        flappy = PeerSpec(peer_id=99, collector="rv1", asn=64599,
                          ipv4_prefix_count=FULL_FEED_IPV4_THRESHOLD + 1,
                          miss_rate=0.0, session_flap_rate=1.0)
        all_peers = list(peers) + [flappy]
        view = BGPView(all_peers)
        stream = BGPStream([Collector("rv1", all_peers, seed=3,
                                      propagation_jitter_s=0)])
        series = view.count_series(stream.updates(timeline), window,
                                   PREFIXES)
        total24 = sum(p.num_slash24s for p in PREFIXES)
        assert series.values.min() == total24

    def test_no_flaps_when_rate_zero(self):
        window = TimeRange(0, 24 * HOUR)
        timeline = ReachabilityTimeline(window=window, prefixes=PREFIXES)
        collector = Collector("rv1", make_peers(count=2), seed=3,
                              propagation_jitter_s=0)
        updates = collector.updates(timeline)
        assert all(u.update_type is UpdateType.ANNOUNCE for u in updates)


class TestBGPStream:
    def test_merged_ordering(self):
        window = TimeRange(0, 2 * HOUR)
        timeline = ReachabilityTimeline(window=window, prefixes=PREFIXES)
        timeline.mark_down(PREFIXES, TimeRange(HOUR, 2 * HOUR))
        stream = BGPStream([
            Collector("rv1", make_peers("rv1", 3), seed=1),
            Collector("ris1", make_peers("ris1", 3), seed=2),
        ])
        updates = list(stream.updates(timeline))
        times = [u.time for u in updates]
        assert times == sorted(times)
        assert {u.collector for u in updates} == {"rv1", "ris1"}
        assert len(list(stream.all_peers())) == 6


class TestBGPView:
    def test_requires_full_feed(self):
        with pytest.raises(ConfigurationError):
            BGPView(make_peers(full=False))

    def test_counts_track_outage(self):
        window = TimeRange(0, 4 * HOUR)
        timeline = ReachabilityTimeline(window=window, prefixes=PREFIXES)
        outage = TimeRange(HOUR, 2 * HOUR)
        timeline.mark_down(PREFIXES, outage)
        peers = make_peers(count=8)
        view = BGPView(peers)
        stream = BGPStream([Collector("rv1", peers, seed=1,
                                      propagation_jitter_s=0)])
        series = view.count_series(stream.updates(timeline), window,
                                   PREFIXES)
        total24 = sum(p.num_slash24s for p in PREFIXES)
        assert series.at(0) == total24          # before outage
        assert series.at(HOUR) == 0             # first outage bin
        assert series.at(2 * HOUR - 1) == 0     # last outage bin
        assert series.at(2 * HOUR) == total24   # recovered

    def test_partial_outage_partial_count(self):
        window = TimeRange(0, 2 * HOUR)
        timeline = ReachabilityTimeline(window=window, prefixes=PREFIXES)
        timeline.mark_down([PREFIXES[0]], TimeRange(HOUR, 2 * HOUR))
        peers = make_peers(count=8)
        view = BGPView(peers)
        stream = BGPStream([Collector("rv1", peers, seed=1,
                                      propagation_jitter_s=0)])
        series = view.count_series(stream.updates(timeline), window,
                                   PREFIXES)
        assert series.at(HOUR) == PREFIXES[1].num_slash24s \
            + PREFIXES[2].num_slash24s

    def test_quorum(self):
        view = BGPView(make_peers(count=8))
        assert view.quorum == 4


class TestVectorizedFastPath:
    def test_matches_reference_on_total_outage(self):
        window = TimeRange(0, 4 * HOUR)
        n_bins = 4 * HOUR // FIVE_MINUTES
        up = np.ones(n_bins)
        outage_bins = slice(HOUR // FIVE_MINUTES, 2 * HOUR // FIVE_MINUTES)
        up[outage_bins] = 0.0
        rng = substream(1, "test")
        series = visible_slash24_series(
            window, [p.num_slash24s for p in PREFIXES], up, rng,
            miss_rate=0.0)
        total24 = sum(p.num_slash24s for p in PREFIXES)
        assert series.at(0) == total24
        assert series.at(HOUR) == 0
        assert series.at(2 * HOUR) == total24

    def test_partial_severity_takes_down_share(self):
        window = TimeRange(0, HOUR)
        n_bins = HOUR // FIVE_MINUTES
        up = np.full(n_bins, 0.5)
        rng = substream(1, "test")
        sizes = [4, 2, 1, 1]
        series = visible_slash24_series(window, sizes, up, rng,
                                        miss_rate=0.0)
        # Prefixes ordered: 50% of the space = the first prefix (4 of 8).
        assert all(v == 4 for v in series.values)

    def test_noise_rare_with_default_miss_rate(self):
        window = TimeRange(0, 24 * HOUR)
        n_bins = 24 * HOUR // FIVE_MINUTES
        rng = substream(1, "test")
        series = visible_slash24_series(
            window, [1] * 50, np.ones(n_bins), rng)
        # P(prefix invisible | up) is astronomically small at 24 peers.
        assert series.values.min() >= 49

    def test_shape_validation(self):
        rng = substream(1, "test")
        with pytest.raises(SignalError):
            visible_slash24_series(TimeRange(0, HOUR), [1],
                                   np.ones(3), rng)
        with pytest.raises(SignalError):
            visible_slash24_series(TimeRange(0, HOUR), [],
                                   np.ones(12), rng)
