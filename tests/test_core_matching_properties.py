"""Property-based tests for matching and labeling invariants."""

from hypothesis import given, settings, strategies as st

from repro.core.labeling import EventLabel, label_events
from repro.core.matching import EventMatcher, Match, MatchingConfig
from repro.ioda.records import ConfirmationStatus, OutageRecord
from repro.kio.schema import KIOCategory, KIOEvent, NetworkType
from repro.signals.entities import EntityScope
from repro.signals.kinds import SignalKind
from repro.timeutils.timestamps import DAY, HOUR, TimeRange, utc

_START_2018 = utc(2018, 1, 1)
_DAY_2018 = _START_2018 // DAY

# A few countries with different offsets, including half-hour zones.
_COUNTRIES = ("SY", "IQ", "MM", "IR", "TG", "VE", "IN", "NP")


def _record(record_id, iso2, start, hours=3):
    return OutageRecord(
        record_id=record_id, country_iso2=iso2,
        span=TimeRange(start, start + hours * HOUR),
        scope=EntityScope.COUNTRY,
        auto_alerts={k: True for k in SignalKind},
        human_visible={k: True for k in SignalKind},
        ioda_url="https://ioda.example.org/x",
        confirmation=ConfirmationStatus.LIKELY)


def _kio(event_id, name, start_day, span_days):
    return KIOEvent(
        event_id=event_id, year=2018, country_name=name,
        start_day=start_day, end_day=start_day + span_days,
        categories=(KIOCategory.FULL_NETWORK,),
        networks=NetworkType.BOTH, nationwide=True)


record_strategy = st.builds(
    _record,
    record_id=st.integers(min_value=1, max_value=10_000),
    iso2=st.sampled_from(_COUNTRIES),
    start=st.integers(min_value=_START_2018,
                      max_value=_START_2018 + 300 * DAY),
    hours=st.integers(min_value=1, max_value=48))

kio_strategy = st.builds(
    _kio,
    event_id=st.integers(min_value=1, max_value=10_000),
    name=st.sampled_from(
        ("Syria", "Iraq", "Myanmar", "Iran", "Togo", "Venezuela",
         "India", "Nepal")),
    start_day=st.integers(min_value=_DAY_2018,
                          max_value=_DAY_2018 + 300),
    span_days=st.integers(min_value=0, max_value=20))


class TestMatchingProperties:
    @settings(max_examples=50, deadline=None)
    @given(st.lists(kio_strategy, max_size=8),
           st.lists(record_strategy, max_size=12))
    def test_lookback_only_adds_matches(self, registry, kio_events,
                                        records):
        """Widening the lookback must never lose a match (monotonicity)."""
        narrow = EventMatcher(registry, MatchingConfig(lookback=0))
        wide = EventMatcher(registry, MatchingConfig(lookback=DAY))
        narrow_matches = set(
            (m.kio_event_id, m.ioda_record_id)
            for m in narrow.match(kio_events, records))
        wide_matches = set(
            (m.kio_event_id, m.ioda_record_id)
            for m in wide.match(kio_events, records))
        assert narrow_matches <= wide_matches

    @settings(max_examples=50, deadline=None)
    @given(st.lists(kio_strategy, max_size=8,
                    unique_by=lambda e: e.event_id),
           st.lists(record_strategy, max_size=12,
                    unique_by=lambda r: r.record_id))
    def test_matches_are_same_country(self, registry, kio_events, records):
        matcher = EventMatcher(registry)
        kio_by_id = {e.event_id: e for e in kio_events}
        record_by_id = {r.record_id: r for r in records}
        for match in matcher.match(kio_events, records):
            kio_event = kio_by_id[match.kio_event_id]
            record = record_by_id[match.ioda_record_id]
            assert registry.by_name(kio_event.country_name).iso2 == \
                record.country_iso2

    @settings(max_examples=50, deadline=None)
    @given(st.lists(kio_strategy, max_size=8,
                    unique_by=lambda e: e.event_id),
           st.lists(record_strategy, max_size=12,
                    unique_by=lambda r: r.record_id))
    def test_matched_start_inside_window(self, registry, kio_events,
                                         records):
        matcher = EventMatcher(registry)
        kio_by_id = {e.event_id: e for e in kio_events}
        record_by_id = {r.record_id: r for r in records}
        for match in matcher.match(kio_events, records):
            window = matcher.kio_window_utc(kio_by_id[match.kio_event_id])
            assert window.contains(
                record_by_id[match.ioda_record_id].span.start)


class TestLabelingProperties:
    @settings(max_examples=50, deadline=None)
    @given(st.lists(record_strategy, min_size=1, max_size=12, unique_by=
                    lambda r: r.record_id))
    def test_partition_is_total(self, records):
        """Every record gets exactly one label."""
        labeled = label_events(records, [])
        assert len(labeled) == len(records)
        assert all(e.label is EventLabel.SPONTANEOUS_OUTAGE
                   for e in labeled)

    @settings(max_examples=50, deadline=None)
    @given(st.lists(record_strategy, min_size=1, max_size=12,
                    unique_by=lambda r: r.record_id),
           st.data())
    def test_matched_records_always_shutdowns(self, records, data):
        chosen = data.draw(st.sets(
            st.sampled_from([r.record_id for r in records])))
        matches = [Match(kio_event_id=1, ioda_record_id=rid)
                   for rid in chosen]
        labeled = label_events(records, matches)
        for event in labeled:
            if event.record.record_id in chosen:
                assert event.is_shutdown
                assert event.via_kio_match
            else:
                assert not event.via_kio_match
