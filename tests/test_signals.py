"""Tests for the time-series and alert infrastructure."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.errors import SignalError, TimeRangeError
from repro.signals.alerts import (
    Alert,
    AlertDetector,
    DetectorConfig,
    group_alerts,
)
from repro.signals.entities import Entity, EntityScope
from repro.signals.kinds import SignalKind
from repro.signals.series import TimeSeries
from repro.timeutils.timestamps import FIVE_MINUTES, HOUR, TEN_MINUTES, \
    TimeRange


class TestTimeSeries:
    def test_zeros_covers_span(self):
        series = TimeSeries.zeros(TimeRange(0, 1501), FIVE_MINUTES)
        assert len(series) == 6  # ceil(1501 / 300)
        assert series.end == 1800

    def test_alignment_enforced(self):
        with pytest.raises(TimeRangeError):
            TimeSeries(7, FIVE_MINUTES, [0.0])

    def test_index_and_timestamp_inverse(self):
        series = TimeSeries.zeros(TimeRange(600, 3600), FIVE_MINUTES)
        for index in range(len(series)):
            ts = series.timestamp_of(index)
            assert series.index_of(ts) == index

    def test_at_set_add(self):
        series = TimeSeries.zeros(TimeRange(0, 900), FIVE_MINUTES)
        series.set_at(301, 5.0)
        series.add_at(599, 2.0)
        assert series.at(300) == 7.0

    def test_out_of_range_access(self):
        series = TimeSeries.zeros(TimeRange(0, 900), FIVE_MINUTES)
        with pytest.raises(TimeRangeError):
            series.at(900)

    def test_slice(self):
        series = TimeSeries(0, FIVE_MINUTES, np.arange(12))
        sliced = series.slice(TimeRange(450, 1000))
        assert sliced.start == 300
        assert list(sliced.values) == [1, 2, 3]

    def test_slice_disjoint_raises(self):
        series = TimeSeries(0, FIVE_MINUTES, np.arange(4))
        with pytest.raises(TimeRangeError):
            series.slice(TimeRange(5000, 6000))

    def test_add_requires_alignment(self):
        a = TimeSeries(0, FIVE_MINUTES, [1.0, 2.0])
        b = TimeSeries(300, FIVE_MINUTES, [1.0, 2.0])
        with pytest.raises(SignalError):
            _ = a + b

    def test_add_and_scale(self):
        a = TimeSeries(0, FIVE_MINUTES, [1.0, 2.0])
        b = TimeSeries(0, FIVE_MINUTES, [10.0, 20.0])
        assert list((a + b).values) == [11.0, 22.0]
        assert list(a.scale(3).values) == [3.0, 6.0]

    def test_iteration_yields_bin_starts(self):
        series = TimeSeries(600, FIVE_MINUTES, [1.0, 2.0])
        assert list(series) == [(600, 1.0), (900, 2.0)]


class TestEntities:
    def test_country_entity(self):
        entity = Entity.country("sy")
        assert entity.identifier == "SY"
        assert entity.country_iso2 == "SY"

    def test_region_entity(self):
        entity = Entity.region("IN", "IN-REG03")
        assert entity.scope is EntityScope.REGION
        assert entity.country_iso2 == "IN"

    def test_asn_entity_has_no_country(self):
        assert Entity.asn(65001).country_iso2 is None

    def test_scope_ordering(self):
        assert EntityScope.COUNTRY.wider_than(EntityScope.REGION)
        assert EntityScope.REGION.wider_than(EntityScope.AS)
        assert not EntityScope.AS.wider_than(EntityScope.COUNTRY)


class TestSignalKinds:
    def test_bin_widths(self):
        assert SignalKind.BGP.bin_width == FIVE_MINUTES
        assert SignalKind.TELESCOPE.bin_width == FIVE_MINUTES
        assert SignalKind.ACTIVE_PROBING.bin_width == TEN_MINUTES


class TestAlertDetector:
    def _series_with_drop(self, baseline=100.0, drop_at=60, drop_len=6,
                          level=0.0, n=120):
        values = np.full(n, baseline)
        values[drop_at:drop_at + drop_len] = level
        return TimeSeries(0, FIVE_MINUTES, values)

    def test_detects_total_drop(self):
        detector = AlertDetector(DetectorConfig(
            threshold=0.99, history_seconds=24 * HOUR,
            min_history_fraction=0.1))
        series = self._series_with_drop()
        alerts = detector.detect(series)
        assert [a.time for a in alerts] == \
            [60 * FIVE_MINUTES + i * FIVE_MINUTES for i in range(6)]
        assert alerts[0].baseline == 100.0

    def test_no_alerts_on_flat_series(self):
        detector = AlertDetector(DetectorConfig(
            threshold=0.99, history_seconds=HOUR,
            min_history_fraction=0.1))
        series = TimeSeries(0, FIVE_MINUTES, np.full(100, 50.0))
        assert detector.detect(series) == []

    def test_threshold_respected(self):
        # 85% of baseline: alerts at threshold 0.99 but not at 0.80.
        series = self._series_with_drop(level=85.0)
        strict = AlertDetector(DetectorConfig(
            threshold=0.99, history_seconds=HOUR,
            min_history_fraction=0.1))
        lax = AlertDetector(DetectorConfig(
            threshold=0.80, history_seconds=HOUR,
            min_history_fraction=0.1))
        assert strict.detect(series)
        assert not lax.detect(series)

    def test_cold_start_suppressed(self):
        detector = AlertDetector(DetectorConfig(
            threshold=0.99, history_seconds=24 * HOUR,
            min_history_fraction=0.5))
        # Drop right at the beginning: not enough history yet.
        series = self._series_with_drop(drop_at=2, drop_len=2)
        assert all(a.time > 2 * FIVE_MINUTES for a in detector.detect(series))

    def test_current_bin_excluded_from_baseline(self):
        detector = AlertDetector(DetectorConfig(
            threshold=0.99, history_seconds=HOUR,
            min_history_fraction=0.1))
        values = np.concatenate([np.full(50, 100.0), np.zeros(50)])
        series = TimeSeries(0, FIVE_MINUTES, values)
        alerts = detector.detect(series)
        # The first down bin must alert against the pre-drop baseline.
        assert alerts[0].time == 50 * FIVE_MINUTES
        assert alerts[0].baseline == 100.0

    def test_config_validation(self):
        with pytest.raises(SignalError):
            DetectorConfig(threshold=0.0, history_seconds=HOUR)
        with pytest.raises(SignalError):
            DetectorConfig(threshold=0.5, history_seconds=0)

    def test_window_shorter_than_bin_rejected(self):
        detector = AlertDetector(DetectorConfig(
            threshold=0.5, history_seconds=60))
        with pytest.raises(SignalError):
            detector.window_bins(FIVE_MINUTES)


class TestGroupAlerts:
    def _alert(self, time):
        return Alert(time=time, value=0.0, baseline=100.0)

    def test_empty(self):
        assert group_alerts([], FIVE_MINUTES) == []

    def test_contiguous_run_single_episode(self):
        alerts = [self._alert(300 * i) for i in range(5)]
        episodes = group_alerts(alerts, FIVE_MINUTES)
        assert len(episodes) == 1
        assert episodes[0].span == TimeRange(0, 1500)
        assert episodes[0].n_bins == 5

    def test_gap_splits_episodes(self):
        alerts = [self._alert(0), self._alert(300), self._alert(3000)]
        episodes = group_alerts(alerts, FIVE_MINUTES)
        assert len(episodes) == 2

    def test_single_bin_gap_absorbed(self):
        alerts = [self._alert(0), self._alert(600)]
        episodes = group_alerts(alerts, FIVE_MINUTES, max_gap_bins=1)
        assert len(episodes) == 1

    def test_depth(self):
        alerts = [Alert(time=0, value=25.0, baseline=100.0)]
        episode = group_alerts(alerts, FIVE_MINUTES)[0]
        assert episode.depth == pytest.approx(0.75)

    @given(st.lists(st.integers(min_value=0, max_value=500),
                    min_size=1, max_size=60, unique=True))
    def test_episodes_partition_alerts(self, bins):
        alerts = [self._alert(300 * b) for b in sorted(bins)]
        episodes = group_alerts(alerts, FIVE_MINUTES)
        assert sum(e.n_bins for e in episodes) == len(alerts)
        # Episodes are ordered and non-overlapping.
        for first, second in zip(episodes, episodes[1:]):
            assert first.span.end < second.span.start
