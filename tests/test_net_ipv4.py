"""Tests for repro.net.ipv4."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import PrefixError
from repro.net.ipv4 import IPv4Address, Prefix, SLASH24_COUNT, parse_prefix


class TestIPv4Address:
    def test_parse_and_str_roundtrip(self):
        for text in ("0.0.0.0", "10.1.2.3", "192.0.2.1", "255.255.255.255"):
            assert str(IPv4Address.parse(text)) == text

    @pytest.mark.parametrize("bad", [
        "256.0.0.1", "1.2.3", "1.2.3.4.5", "a.b.c.d", "01.2.3.4", "",
        "1..2.3",
    ])
    def test_parse_rejects_malformed(self, bad):
        with pytest.raises(PrefixError):
            IPv4Address.parse(bad)

    def test_out_of_range_value(self):
        with pytest.raises(PrefixError):
            IPv4Address(2 ** 32)
        with pytest.raises(PrefixError):
            IPv4Address(-1)

    def test_slash24_index(self):
        assert IPv4Address.parse("10.1.2.3").slash24 == \
            (10 << 16) | (1 << 8) | 2

    def test_ordering(self):
        assert IPv4Address.parse("1.0.0.0") < IPv4Address.parse("2.0.0.0")

    @given(st.integers(min_value=0, max_value=2 ** 32 - 1))
    def test_parse_str_roundtrip_property(self, value):
        address = IPv4Address(value)
        assert IPv4Address.parse(str(address)) == address


class TestPrefix:
    def test_parse(self):
        prefix = parse_prefix("10.0.0.0/8")
        assert prefix.length == 8
        assert prefix.num_addresses == 2 ** 24
        assert prefix.num_slash24s == 2 ** 16

    def test_rejects_host_bits(self):
        with pytest.raises(PrefixError):
            parse_prefix("10.0.0.1/8")

    def test_rejects_bad_length(self):
        with pytest.raises(PrefixError):
            Prefix(0, 33)

    @pytest.mark.parametrize("bad", ["10.0.0.0", "10.0.0.0/", "10.0.0.0/x"])
    def test_parse_rejects_malformed(self, bad):
        with pytest.raises(PrefixError):
            parse_prefix(bad)

    def test_longer_than_24_has_zero_slash24s(self):
        assert parse_prefix("10.0.0.0/25").num_slash24s == 0
        assert list(parse_prefix("10.0.0.0/25").slash24s()) == []

    def test_slash24_enumeration(self):
        prefix = parse_prefix("10.0.0.0/22")
        blocks = list(prefix.slash24s())
        assert len(blocks) == 4
        assert blocks[0] == (10 << 16)

    def test_from_slash24_roundtrip(self):
        prefix = Prefix.from_slash24(12345)
        assert prefix.length == 24
        assert list(prefix.slash24s()) == [12345]

    def test_from_slash24_bounds(self):
        with pytest.raises(PrefixError):
            Prefix.from_slash24(SLASH24_COUNT)

    def test_contains(self):
        prefix = parse_prefix("192.0.2.0/24")
        assert prefix.contains(IPv4Address.parse("192.0.2.200"))
        assert not prefix.contains(IPv4Address.parse("192.0.3.1"))

    def test_covers(self):
        outer = parse_prefix("10.0.0.0/8")
        inner = parse_prefix("10.1.0.0/16")
        assert outer.covers(inner)
        assert not inner.covers(outer)
        assert outer.covers(outer)

    def test_first_last_address(self):
        prefix = parse_prefix("192.0.2.0/24")
        assert str(prefix.first_address) == "192.0.2.0"
        assert str(prefix.last_address) == "192.0.2.255"

    @given(st.integers(min_value=0, max_value=SLASH24_COUNT - 1),
           st.integers(min_value=0, max_value=8))
    def test_aligned_aggregate_properties(self, block, shift):
        size = 1 << shift
        aligned = (block // size) * size
        prefix = Prefix(aligned << 8, 24 - shift)
        assert prefix.num_slash24s == size
        covered = list(prefix.slash24s())
        assert covered[0] == aligned
        assert len(covered) == size
