"""Tests for case-study brief generation."""

import pytest

from repro.analysis.case_study import build_case_study
from repro.core.heuristics import ShutdownTriage


@pytest.fixture(scope="module")
def triage(pipeline_result):
    registry = pipeline_result.merged.registry
    libdem = {
        (registry.by_name(r.country_name).iso2, r.year):
            r.liberal_democracy
        for r in pipeline_result.vdem}
    cells = set()
    for dataset in (pipeline_result.coups, pipeline_result.elections,
                    pipeline_result.protests):
        for record in dataset:
            cells.add((registry.by_name(record.country_name).iso2,
                       record.day))
    return ShutdownTriage(registry, cells, libdem,
                          pipeline_result.state_shares)


class TestCaseStudy:
    def test_shutdown_brief(self, pipeline_result, platform, triage):
        merged = pipeline_result.merged
        event = next(e for e in merged.ioda_shutdowns()
                     if e.record.visible_in_all_signals)
        study = build_case_study(merged, platform,
                                 event.record.record_id, triage)
        assert study.label == "shutdown"
        assert study.triage is not None
        assert all(item.drop > 0.3 for item in study.evidence)
        rows = study.rows()
        assert any("Case study" in row for row in rows)
        assert any("triage" not in row for row in rows)

    def test_outage_brief_without_triage(self, pipeline_result, platform):
        merged = pipeline_result.merged
        event = merged.ioda_outages()[0]
        study = build_case_study(merged, platform,
                                 event.record.record_id)
        assert study.label == "spontaneous-outage"
        assert study.triage is None
        assert not study.matched_kio_ids

    def test_matched_shutdown_lists_kio_entries(self, pipeline_result,
                                                platform):
        merged = pipeline_result.merged
        event = next(e for e in merged.ioda_shutdowns()
                     if e.via_kio_match)
        study = build_case_study(merged, platform,
                                 event.record.record_id)
        assert study.matched_kio_ids
        assert any("matched KIO" in row for row in study.rows())

    def test_mobilization_context_detected(self, pipeline_result,
                                           platform):
        merged = pipeline_result.merged
        scenario = pipeline_result.scenario
        triggered = {d.trigger_event_id for d in scenario.shutdowns
                     if d.trigger_event_id is not None}
        assert triggered
        found = None
        for event in merged.ioda_shutdowns():
            study = build_case_study(merged, platform,
                                     event.record.record_id)
            if study.same_day_events:
                found = study
                break
        assert found is not None
