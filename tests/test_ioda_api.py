"""Tests for the IODA-style query API and the user-impact analysis."""

import base64
import warnings

import pytest

from repro.analysis.impact import user_impact
from repro.errors import CursorError, PaginationError, TimeRangeError
from repro.ioda.api import IODAClient
from repro.signals.entities import Entity
from repro.signals.kinds import SignalKind
from repro.timeutils.timestamps import DAY, HOUR
from repro.world.scenario import STUDY_PERIOD


@pytest.fixture(scope="module")
def client(platform, pipeline_result):
    return IODAClient(platform, pipeline_result.curated_records)


class TestSignalQueries:
    def test_payload_shape(self, client):
        payload = client.get_signal(
            Entity.country("SY"), SignalKind.BGP,
            STUDY_PERIOD.start, STUDY_PERIOD.start + 6 * HOUR)
        assert payload.signal == "bgp"
        assert payload.step == 300
        assert len(payload.values) == 6 * 12
        assert payload.until_ts - payload.from_ts == 6 * HOUR

    def test_all_signals(self, client):
        payloads = client.get_all_signals(
            Entity.country("SY"), STUDY_PERIOD.start,
            STUDY_PERIOD.start + HOUR)
        assert set(payloads) == {"bgp", "active-probing", "telescope"}

    def test_invalid_window_rejected(self, client):
        with pytest.raises(TimeRangeError):
            client.get_signal(Entity.country("SY"), SignalKind.BGP,
                              100, 100)


class TestAlertQueries:
    def test_alerts_for_event_window(self, client, scenario):
        event = next(d for d in scenario.shutdowns
                     if d.country_iso2 == "SY"
                     and STUDY_PERIOD.contains(d.span.start))
        entries = client.get_alerts(
            Entity.country("SY"), event.span.start - DAY,
            event.span.end + 6 * HOUR)
        assert entries
        assert any(e.episode.span.overlaps(event.span) for e in entries)


class TestEventFeed:
    def test_cursor_pagination_walks_everything(self, client,
                                                pipeline_result):
        seen = []
        cursor = None
        while True:
            page = client.get_events(limit=100, cursor=cursor)
            seen.extend(page.events)
            if page.cursor is None:
                break
            cursor = page.cursor
        assert len(seen) == len(pipeline_result.curated_records)
        assert page.total == len(pipeline_result.curated_records)
        assert seen == list(pipeline_result.curated_records) \
            or len(seen) == len(pipeline_result.curated_records)

    def test_offset_param_removed(self, client):
        # Cursor paging is the only contract: the deprecated offset=
        # parameter is gone, loudly.
        with pytest.raises(TypeError):
            client.get_events(offset=0, limit=10)

    def test_next_offset_field_removed(self, client):
        page = client.get_events(limit=10)
        assert not hasattr(page, "next_offset")

    def test_cursor_pagination_emits_no_warning(self, client):
        with warnings.catch_warnings(record=True) as captured:
            warnings.simplefilter("always")
            page = client.get_events(limit=10)
            client.get_events(limit=10, cursor=page.cursor)
        assert captured == []

    def test_cursor_resumes_where_the_page_ended(self, client):
        first = client.get_events(limit=100)
        by_cursor = client.get_events(limit=50, cursor=first.cursor)
        assert by_cursor.events == client.get_events(limit=150).events[100:]

    def test_cursor_bound_to_filters(self, client):
        page = client.get_events(limit=10)
        assert page.cursor is not None
        with pytest.raises(CursorError):
            client.get_events(country_iso2="SY", limit=10,
                              cursor=page.cursor)

    def test_malformed_cursor_rejected(self, client):
        with pytest.raises(CursorError):
            client.get_events(cursor="not-a-cursor")

    def test_tampered_cursor_rejected(self, client):
        # Flip the position inside an otherwise well-formed token: the
        # query-key check must catch edits, not just un-decodable junk.
        page = client.get_events(limit=10)
        token = base64.urlsafe_b64decode(page.cursor.encode("ascii"))
        version, position, key = token.decode("ascii").split(":")
        forged = base64.urlsafe_b64encode(
            f"{version}:{position}:{'0' * len(key)}".encode("ascii")
        ).decode("ascii")
        with pytest.raises(CursorError):
            client.get_events(limit=10, cursor=forged)

    def test_unsupported_cursor_version_rejected(self, client):
        forged = base64.urlsafe_b64encode(b"v9:0:abc").decode("ascii")
        with pytest.raises(CursorError, match="version"):
            client.get_events(limit=10, cursor=forged)

    def test_cursor_error_is_a_pagination_error(self, client):
        # Typed for new callers, but old `except PaginationError`
        # handlers must keep catching cursor trouble.
        assert issubclass(CursorError, PaginationError)
        with pytest.raises(PaginationError):
            client.get_events(cursor="not-a-cursor")

    def test_cursor_invalid_after_feed_change(self, platform,
                                              pipeline_result):
        records = pipeline_result.curated_records
        before = IODAClient(platform, records)
        page = before.get_events(limit=10)
        after = IODAClient(platform, records[:-1])  # feed revision moved
        with pytest.raises(CursorError):
            after.get_events(limit=10, cursor=page.cursor)

    def test_live_feed_serves_current_records(self, platform,
                                              pipeline_result):
        records = pipeline_result.curated_records
        state = {"records": records[:5], "revision": 1}
        live = IODAClient(platform, feed=lambda: state["records"],
                          revision=lambda: state["revision"])
        assert live.get_events(limit=100).total == 5
        state["records"] = records[:9]
        assert live.get_events(limit=100).total == 9

    def test_live_cursor_stale_after_revision_moves(self, platform,
                                                    pipeline_result):
        # The StreamSession.client() contract: cursors bind to the
        # stream revision (the watermark), so a cursor minted before an
        # advance fails loudly instead of silently paging a shifted
        # feed — even if the record count happens to be unchanged.
        records = pipeline_result.curated_records
        state = {"revision": 100}
        live = IODAClient(platform, feed=lambda: records,
                          revision=lambda: state["revision"])
        page = live.get_events(limit=10)
        assert page.cursor is not None
        state["revision"] = 200
        with pytest.raises(CursorError, match="revision"):
            live.get_events(limit=10, cursor=page.cursor)

    def test_live_feed_rejects_static_records_too(self, platform,
                                                  pipeline_result):
        with pytest.raises(ValueError):
            IODAClient(platform, pipeline_result.curated_records,
                       feed=lambda: [])

    def test_paging_params_are_keyword_only(self, client):
        with pytest.raises(TypeError):
            client.get_events("SY", None, None, 50)  # limit positionally

    def test_country_filter(self, client):
        page = client.get_events(country_iso2="sy", limit=500)
        assert page.events
        assert all(e.country_iso2 == "SY" for e in page.events)

    def test_time_filter(self, client):
        mid = STUDY_PERIOD.start + STUDY_PERIOD.duration // 2
        page = client.get_events(from_ts=mid, limit=500)
        assert all(e.span.start >= mid for e in page.events)

    def test_bad_limit_rejected(self, client):
        with pytest.raises(TimeRangeError):
            client.get_events(limit=0)

    def test_paging_does_not_refingerprint(self, platform,
                                           pipeline_result,
                                           monkeypatch):
        # The query-key hash is pure in the platform config, so it is
        # computed exactly once — at construction — and never again
        # while paging.
        import repro.ioda.api as api_module
        calls = []
        real = api_module.fingerprint

        def counting(*parts):
            calls.append(parts)
            return real(*parts)

        monkeypatch.setattr(api_module, "fingerprint", counting)
        client = IODAClient(platform, pipeline_result.curated_records)
        assert len(calls) == 1
        cursor = None
        for _ in range(5):
            page = client.get_events(limit=10, cursor=cursor)
            if page.cursor is None:
                break
            cursor = page.cursor
        assert len(calls) == 1


class TestUserImpact:
    def test_shutdown_countries_cover_large_population(
            self, pipeline_result):
        impact = user_impact(pipeline_result.merged,
                             pipeline_result.datareportal)
        assert impact.shutdown_users_millions > 100
        assert impact.outage_users_millions > \
            impact.shutdown_users_millions
        assert len(impact.rows()) == 2
