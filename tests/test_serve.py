"""The serving layer: store build, routes, cursors, transports, loadgen.

The acceptance bar:

- ``build_store`` precomputes event feeds, tile pyramids, and reports
  into a content-addressed store whose addresses double as ETags;
- every 200 carries that ETag and ``If-None-Match`` revalidates to a
  bodyless 304;
- the event routes speak the exact ``IODAClient`` cursor contract —
  pages resume where they ended, cross-filter reuse is a
  ``CursorError`` → 400, and cursors bind to the store's content;
- the load harness's request/response counts are deterministic in
  ``(mix, concurrency, requests, seed)`` — the property that lets the
  SLO baseline exact-match them in CI — and the TCP transport serves
  the same bytes as in-process calls.
"""

import asyncio
import json

import pytest

import repro.api as api
from repro.errors import ConfigurationError, ServeError
from repro.serve import ArtifactStore, LoadgenConfig, ServeApp, \
    ServeServer, build_store, run_loadgen, tile_count
from repro.timeutils.timestamps import TimeRange, utc
from repro.world.scenario import ScenarioConfig

SMALL_CONFIG = ScenarioConfig(seed=7, years=(2018,))
SMALL_PERIOD = TimeRange(utc(2018, 1, 1), utc(2018, 7, 1))


@pytest.fixture(scope="module")
def small_result():
    return api.run(scenario_config=SMALL_CONFIG,
                   study_period=SMALL_PERIOD)


@pytest.fixture(scope="module")
def store(small_result, tmp_path_factory):
    root = tmp_path_factory.mktemp("serve") / "store"
    return build_store(small_result, root, tile_bins=64, zooms=(0, 1),
                       max_countries=3, period=SMALL_PERIOD)


@pytest.fixture()
def app(store):
    return ServeApp(store)


def get(app, target, headers=None):
    return asyncio.run(app.handle("GET", target, headers))


class TestStoreBuild:
    def test_store_has_every_surface(self, store):
        resources = store.resources()
        assert "events/all" in resources
        assert "tiles/index" in resources
        assert "summary" in resources
        assert "health" in resources
        index = store.read_json("tiles/index")
        assert len(index["countries"]) == 3
        for iso2 in index["countries"]:
            for kind in index["kinds"]:
                for zoom in index["zooms"]:
                    for i in range(tile_count(zoom)):
                        assert f"tiles/{iso2}/{kind}/z{zoom}/{i}" \
                            in resources

    def test_addresses_are_content_derived(self, small_result,
                                            tmp_path):
        # Same run, two builds → identical addresses for every
        # resource (the store is a pure function of its inputs).
        again = build_store(small_result, tmp_path / "again",
                            tile_bins=64, zooms=(0, 1),
                            max_countries=3, period=SMALL_PERIOD)
        first = build_store(small_result, tmp_path / "first",
                            tile_bins=64, zooms=(0, 1),
                            max_countries=3, period=SMALL_PERIOD)
        assert {r: first.etag(r) for r in first.resources()} \
            == {r: again.etag(r) for r in again.resources()}

    def test_events_round_trip_records(self, store, small_result):
        payload = store.read_json("events/all")
        assert payload["total"] == len(small_result.curated_records)
        assert len(payload["records"]) == payload["total"]

    def test_tile_values_bounded_by_tile_bins(self, store):
        index = store.read_json("tiles/index")
        iso2 = index["countries"][0]
        tile = store.read_json(f"tiles/{iso2}/bgp/z1/0")
        assert 0 < len(tile["values"]) <= 64
        assert tile["width"] % 300 == 0  # multiple of the native width

    def test_open_missing_store_raises(self, tmp_path):
        with pytest.raises(ServeError):
            ArtifactStore.open(tmp_path / "nowhere")

    def test_unknown_resource_raises(self, store):
        with pytest.raises(ServeError):
            store.read_bytes("no/such/thing")

    def test_bad_build_options_rejected(self, small_result, tmp_path):
        with pytest.raises(ConfigurationError):
            build_store(small_result, tmp_path / "x", tile_bins=0)
        with pytest.raises(ConfigurationError):
            build_store(small_result, tmp_path / "x", zooms=())

    def test_runresult_serve_convenience(self, small_result, tmp_path):
        store = small_result.serve(tmp_path / "via-api",
                                   tile_bins=32, zooms=(0,),
                                   max_countries=1,
                                   period=SMALL_PERIOD)
        assert "events/all" in store.resources()


class TestRoutesAndETags:
    def test_every_200_carries_a_content_address_etag(self, app, store):
        index = store.read_json("tiles/index")
        iso2 = index["countries"][0]
        targets = ["/healthz", "/v1/summary", "/v1/health",
                   "/v1/manifest", "/v1/tiles",
                   f"/v1/tiles/{iso2}/bgp/0/0",
                   "/v1/events?limit=5", "/metrics"]
        for target in targets:
            response = get(app, target)
            assert response.status == 200, target
            assert response.etag, target

    def test_artifact_etag_is_the_store_address(self, app, store):
        response = get(app, "/v1/summary")
        assert response.etag == store.etag("summary")

    def test_if_none_match_revalidates_to_304(self, app):
        first = get(app, "/v1/summary")
        again = get(app, "/v1/summary",
                    {"If-None-Match": f'"{first.etag}"'})
        assert again.status == 304
        assert again.body == b""
        assert again.etag == first.etag

    def test_if_none_match_weak_and_star_forms(self, app):
        first = get(app, "/v1/tiles")
        weak = get(app, "/v1/tiles",
                   {"If-None-Match": f'W/"{first.etag}"'})
        star = get(app, "/v1/tiles", {"If-None-Match": "*"})
        listed = get(app, "/v1/tiles",
                     {"If-None-Match": f'"zzz", "{first.etag}"'})
        assert (weak.status, star.status, listed.status) \
            == (304, 304, 304)

    def test_stale_etag_gets_fresh_200(self, app):
        response = get(app, "/v1/summary",
                       {"If-None-Match": '"not-the-address"'})
        assert response.status == 200
        assert response.body

    def test_unknown_route_404(self, app):
        assert get(app, "/v1/nope").status == 404
        assert get(app, "/v1/tiles/XX/bgp/0/99").status == 404

    def test_non_get_405(self, app):
        response = asyncio.run(app.handle("POST", "/v1/summary"))
        assert response.status == 405

    def test_head_omits_body(self, app):
        response = asyncio.run(app.handle("HEAD", "/v1/summary"))
        assert response.status == 200
        assert response.body == b""
        assert response.etag

    def test_tile_country_case_insensitive(self, app, store):
        index = store.read_json("tiles/index")
        iso2 = index["countries"][0]
        response = get(app, f"/v1/tiles/{iso2.lower()}/bgp/0/0")
        assert response.status == 200


class TestEventFeedParity:
    """The serve routes speak the IODAClient cursor contract."""

    def test_cursor_resumes_where_the_page_ended(self, app):
        first = get(app, "/v1/events?limit=3").json()
        rest = get(app, f"/v1/events?limit=3&cursor={first['cursor']}"
                   ).json()
        ids = [r["record_id"] for r in first["events"]]
        next_ids = [r["record_id"] for r in rest["events"]]
        assert not set(ids) & set(next_ids)
        everything = get(app, "/v1/events?limit=500").json()
        assert [r["record_id"] for r in everything["events"]][:6] \
            == ids + next_ids

    def test_pagination_walks_everything(self, app, small_result):
        seen, cursor = [], None
        while True:
            target = "/v1/events?limit=7"
            if cursor:
                target += f"&cursor={cursor}"
            page = get(app, target).json()
            seen.extend(page["events"])
            cursor = page["cursor"]
            if cursor is None:
                break
        assert len(seen) == len(small_result.curated_records)

    def test_matches_ioda_client_ordering(self, app, small_result):
        client = api.client(small_result)
        client_page = client.get_events(limit=10)
        serve_page = get(app, "/v1/events?limit=10").json()
        assert [r.record_id for r in client_page.events] \
            == [r["record_id"] for r in serve_page["events"]]
        assert client_page.total == serve_page["total"]

    def test_cross_filter_cursor_is_400(self, app, store):
        countries = sorted(
            {r["country"] for r
             in store.read_json("events/all")["records"]})
        a, b = countries[0], countries[-1]
        page = get(app, f"/v1/events?country={a}&limit=2").json()
        assert page["cursor"]
        crossed = get(app, f"/v1/events?country={b}&limit=2"
                           f"&cursor={page['cursor']}")
        assert crossed.status == 400
        assert "cursor" in crossed.json()["error"]

    def test_tampered_cursor_is_400(self, app):
        page = get(app, "/v1/events?limit=2").json()
        mangled = page["cursor"][:-4] + "AAAA"
        response = get(app, f"/v1/events?limit=2&cursor={mangled}")
        assert response.status == 400

    def test_time_filters_apply(self, app):
        everything = get(app, "/v1/events?limit=500").json()
        midpoint = everything["events"][
            len(everything["events"]) // 2]["start"]
        windowed = get(app, f"/v1/events?from={midpoint}&limit=500"
                       ).json()
        assert 0 < windowed["total"] < everything["total"]
        assert all(r["start"] >= midpoint
                   for r in windowed["events"])

    def test_unknown_country_is_empty_not_404(self, app):
        page = get(app, "/v1/events?country=ZZ&limit=5")
        assert page.status == 200
        assert page.json() == {"events": [], "total": 0,
                               "cursor": None}

    def test_bad_limit_is_400(self, app):
        assert get(app, "/v1/events?limit=0").status == 400
        assert get(app, "/v1/events?limit=banana").status == 400


class TestTCPTransport:
    def test_tcp_serves_the_same_bytes_as_inprocess(self, store):
        async def scenario():
            app = ServeApp(store)
            server = await ServeServer(app).start()
            host, port = server.address
            try:
                reader, writer = await asyncio.open_connection(host,
                                                               port)
                writer.write(b"GET /v1/summary HTTP/1.1\r\n"
                             b"Host: t\r\n\r\n")
                await writer.drain()
                status = await reader.readline()
                headers = {}
                while True:
                    line = await reader.readline()
                    if line in (b"\r\n", b""):
                        break
                    name, _, value = line.decode().partition(":")
                    headers[name.strip().lower()] = value.strip()
                body = await reader.readexactly(
                    int(headers["content-length"]))
                # Keep-alive: a conditional re-fetch on the same
                # connection revalidates to 304.
                writer.write(
                    b"GET /v1/summary HTTP/1.1\r\nHost: t\r\n"
                    b"If-None-Match: " + headers["etag"].encode()
                    + b"\r\n\r\n")
                await writer.drain()
                second_status = await reader.readline()
                writer.close()
                direct = await app.handle("GET", "/v1/summary")
                return status, headers, body, second_status, direct
            finally:
                await server.stop()

        status, headers, body, second_status, direct = \
            asyncio.run(scenario())
        assert b"200" in status
        assert b"304" in second_status
        assert body == direct.body
        assert headers["etag"].strip('"') == direct.etag


class TestLoadgen:
    CONFIG = dict(concurrency=16, requests_per_client=8, seed=5)

    def test_counts_deterministic_across_runs(self, store):
        reports = [run_loadgen(store, config=LoadgenConfig(
            mix="dashboard", **self.CONFIG)) for _ in range(2)]
        counts = [(r.requests, r.ok, r.not_modified, r.errors)
                  for r in reports]
        assert counts[0] == counts[1]
        assert reports[0].errors == 0
        assert reports[0].requests == 16 * 8

    def test_counts_deterministic_across_transports(self, store):
        inproc = run_loadgen(store, config=LoadgenConfig(
            mix="dashboard", **self.CONFIG))
        tcp = run_loadgen(store, config=LoadgenConfig(
            mix="dashboard", **self.CONFIG), tcp=True)
        assert (inproc.requests, inproc.ok, inproc.not_modified,
                inproc.errors) \
            == (tcp.requests, tcp.ok, tcp.not_modified, tcp.errors)
        assert tcp.transport == "tcp"

    def test_dashboard_mix_exercises_the_304_path(self, store):
        report = run_loadgen(store, config=LoadgenConfig(
            mix="dashboard", concurrency=32, requests_per_client=12,
            seed=3))
        assert report.not_modified > 0
        assert report.errors == 0

    def test_identical_requests_coalesce(self, store):
        report = run_loadgen(store, config=LoadgenConfig(
            mix="zoom", concurrency=64, requests_per_client=4, seed=2))
        assert report.cache.get("coalesced", 0) > 0
        assert report.cache_hit_rate > 0.5

    def test_events_mix_walks_cursors_cleanly(self, store):
        report = run_loadgen(store, config=LoadgenConfig(
            mix="events", **self.CONFIG))
        assert report.errors == 0
        assert report.latency["events"]["count"] > 0

    def test_statistics_shape_for_baselines(self, store):
        from repro.obs import PerfBaseline
        report = run_loadgen(store, config=LoadgenConfig(
            mix="dashboard", **self.CONFIG))
        stats = report.statistics()
        baseline = PerfBaseline.capture(
            name="t", config=report.config, statistics=stats)
        # Deterministic counts land in the exact-matched fidelity
        # half; latencies and cache trends in the perf half.
        assert "serve.requests.total" in baseline.fidelity
        assert "serve.responses.not_modified" in baseline.fidelity
        assert any(k.startswith("perf.serve.latency_p99.")
                   for k in baseline.perf)
        assert "cache.serve.hit_rate" in baseline.perf

    def test_bad_mix_rejected(self):
        with pytest.raises(ConfigurationError):
            LoadgenConfig(mix="stampede")

    def test_report_serializes(self, store, tmp_path):
        report = run_loadgen(store, config=LoadgenConfig(
            mix="dashboard", **self.CONFIG))
        path = report.save(tmp_path / "slo.json")
        payload = json.loads(path.read_text("utf-8"))
        assert payload["requests"] == report.requests
        assert payload["cache_hit_rate"] == round(
            report.cache_hit_rate, 6)
        assert report.rows()
