"""The serving layer's single-flight async LRU (`repro.serve.cache`).

The acceptance bar, mirroring the thread-side ``SignalCache`` suite:

- concurrent identical requests coalesce into exactly one factory
  invocation (and the coalesced waiters are counted — the counter the
  load harness uses to *prove* single-flight behaviour);
- the LRU bound evicts least-recently-used entries under pressure;
- a failed or cancelled leader never poisons its followers: one of
  them takes over, the value is computed exactly where it should be,
  and failures are never cached.

No pytest-asyncio dependency: each test drives its own event loop via
``asyncio.run``.
"""

import asyncio

import pytest

from repro.errors import ConfigurationError
from repro.obs import MetricsRegistry
from repro.serve.cache import AsyncLRU


class TestSingleFlight:
    def test_concurrent_identical_requests_share_one_load(self):
        async def scenario():
            cache = AsyncLRU(8)
            loads = []

            async def factory():
                loads.append(1)
                await asyncio.sleep(0.01)
                return "value"

            results = await asyncio.gather(*(
                cache.get_or_create("key", factory) for _ in range(50)))
            return cache, loads, results

        cache, loads, results = asyncio.run(scenario())
        assert loads == [1]
        assert results == ["value"] * 50
        assert cache.misses == 1
        assert cache.coalesced == 49
        assert cache.hits == 49  # every waiter re-checks and hits

    def test_different_keys_load_independently(self):
        async def scenario():
            cache = AsyncLRU(8)

            async def factory(key):
                await asyncio.sleep(0)
                return key * 2

            results = await asyncio.gather(*(
                cache.get_or_create(k, lambda k=k: factory(k))
                for k in range(4)))
            return cache, results

        cache, results = asyncio.run(scenario())
        assert results == [0, 2, 4, 6]
        assert cache.misses == 4
        assert cache.coalesced == 0

    def test_sequential_hits_never_reload(self):
        async def scenario():
            cache = AsyncLRU(8)
            loads = []

            async def factory():
                loads.append(1)
                return 42

            first = await cache.get_or_create("k", factory)
            second = await cache.get_or_create("k", factory)
            return cache, loads, (first, second)

        cache, loads, values = asyncio.run(scenario())
        assert values == (42, 42)
        assert loads == [1]
        assert (cache.hits, cache.misses) == (1, 1)

    def test_counters_flow_into_the_registry(self):
        async def scenario():
            metrics = MetricsRegistry()
            cache = AsyncLRU(8, metrics=metrics)

            async def factory():
                await asyncio.sleep(0.005)
                return "v"

            await asyncio.gather(*(
                cache.get_or_create("k", factory) for _ in range(5)))
            return metrics.snapshot()["counters"]

        counters = asyncio.run(scenario())
        assert counters["serve.cache.misses"] == 1
        assert counters["serve.cache.coalesced"] == 4
        assert counters["serve.cache.hits"] == 4


class TestEviction:
    def test_lru_evicts_under_pressure(self):
        async def scenario():
            cache = AsyncLRU(2)

            async def factory(key):
                await asyncio.sleep(0)
                return key

            await cache.get_or_create("a", lambda: factory("a"))
            await cache.get_or_create("b", lambda: factory("b"))
            await cache.get_or_create("a", lambda: factory("a"))  # a hot
            await cache.get_or_create("c", lambda: factory("c"))  # b out
            await cache.get_or_create("b", lambda: factory("b"))  # reload
            return cache

        cache = asyncio.run(scenario())
        assert cache.evictions == 2  # b evicted, then a evicted
        assert cache.misses == 4  # a, b, c, then b again
        assert cache.hits == 1
        assert len(cache) == 2

    def test_bound_is_respected(self):
        async def scenario():
            cache = AsyncLRU(3)

            async def factory(key):
                await asyncio.sleep(0)
                return key

            for k in range(10):
                await cache.get_or_create(k, lambda k=k: factory(k))
            return cache

        cache = asyncio.run(scenario())
        assert len(cache) == 3
        assert cache.evictions == 7

    def test_zero_size_rejected(self):
        with pytest.raises(ConfigurationError):
            AsyncLRU(0)


class TestLeaderFailure:
    def test_failed_leader_does_not_poison_followers(self):
        async def scenario():
            cache = AsyncLRU(8)
            attempts = []

            async def factory():
                attempts.append(1)
                await asyncio.sleep(0.005)
                if len(attempts) == 1:
                    raise OSError("disk hiccup")
                return "recovered"

            results = await asyncio.gather(
                *(cache.get_or_create("k", factory) for _ in range(5)),
                return_exceptions=True)
            return cache, attempts, results

        cache, attempts, results = asyncio.run(scenario())
        failures = [r for r in results if isinstance(r, OSError)]
        values = [r for r in results if r == "recovered"]
        assert len(failures) == 1  # only the leader sees the error
        assert len(values) == 4  # every follower recovers
        assert attempts == [1, 1]  # one retry, not one per follower
        assert cache.misses == 1  # the failure was never cached

    def test_cancelled_leader_does_not_poison_followers(self):
        async def scenario():
            cache = AsyncLRU(8)
            started = asyncio.Event()
            loads = []

            async def factory():
                loads.append(1)
                started.set()
                await asyncio.sleep(0.01)
                return "value"

            leader = asyncio.create_task(
                cache.get_or_create("k", factory))
            await started.wait()
            followers = [asyncio.create_task(
                cache.get_or_create("k", factory)) for _ in range(4)]
            await asyncio.sleep(0)  # let the followers enqueue
            leader.cancel()
            results = await asyncio.gather(*followers)
            with pytest.raises(asyncio.CancelledError):
                await leader
            return cache, loads, results

        cache, loads, results = asyncio.run(scenario())
        assert results == ["value"] * 4
        # The cancelled leader's load plus exactly one successor's.
        assert loads == [1, 1]
        assert cache.misses == 1

    def test_failure_then_fresh_request_reloads(self):
        async def scenario():
            cache = AsyncLRU(8)
            calls = []

            async def failing():
                calls.append("fail")
                await asyncio.sleep(0)
                raise ValueError("nope")

            async def working():
                calls.append("ok")
                await asyncio.sleep(0)
                return "fine"

            try:
                await cache.get_or_create("k", failing)
            except ValueError:
                pass
            value = await cache.get_or_create("k", working)
            return cache, calls, value

        cache, calls, value = asyncio.run(scenario())
        assert value == "fine"
        assert calls == ["fail", "ok"]
        assert cache.misses == 1
        assert len(cache) == 1
