"""Histogram percentiles and the OpenMetrics text exposition.

The acceptance bar:

- :meth:`Histogram.percentiles` answers several quantiles from one
  bucket walk with the same semantics the per-quantile
  :meth:`Histogram.percentile` always had: empty histograms report
  ``None``, the overflow bucket reports the observed maximum, and
  interpolated values clamp to the observed ``[min, max]``;
- ``to_openmetrics()`` renders a lintable Prometheus text exposition:
  ``repro_``-prefixed names, ``_total`` counters, cumulative
  ``_bucket{le=...}`` plus ``_sum``/``_count`` histograms, escaped
  labels, deterministic ordering, and the ``# EOF`` terminator.
"""

import json

import pytest

import repro.api as api
from repro.cli import main
from repro.obs import MetricsRegistry, snapshot_to_openmetrics
from repro.obs.metrics import Histogram
from repro.timeutils.timestamps import TimeRange, utc
from repro.world.scenario import ScenarioConfig

SMALL_CONFIG = ScenarioConfig(seed=7, years=(2018,))
SMALL_PERIOD = TimeRange(utc(2018, 1, 1), utc(2018, 7, 1))


class TestPercentiles:
    def test_empty_histogram_has_no_percentiles(self):
        histogram = Histogram(buckets=(1.0, 2.0))
        assert histogram.percentiles((50, 90, 99)) \
            == {50: None, 90: None, 99: None}
        assert histogram.percentile(50) is None

    def test_single_value_is_every_percentile(self):
        histogram = Histogram(buckets=(1.0, 2.0, 4.0))
        histogram.observe(1.5)
        values = histogram.percentiles((1, 50, 99))
        assert values == {1: 1.5, 50: 1.5, 99: 1.5}

    def test_batch_matches_per_quantile_calls(self):
        histogram = Histogram()
        for i in range(200):
            histogram.observe(0.001 * (i + 1) * 7 % 5)
        qs = (1, 10, 25, 50, 75, 90, 99, 99.9)
        batch = histogram.percentiles(qs)
        assert batch == {q: histogram.percentile(q) for q in qs}

    def test_unsorted_quantiles_keyed_correctly(self):
        histogram = Histogram(buckets=(1.0, 2.0, 4.0))
        for value in (0.5, 1.5, 3.0, 3.5):
            histogram.observe(value)
        shuffled = histogram.percentiles((99, 25, 75))
        in_order = histogram.percentiles((25, 75, 99))
        assert shuffled == in_order
        assert shuffled[25] <= shuffled[75] <= shuffled[99]

    def test_overflow_bucket_reports_maximum(self):
        histogram = Histogram(buckets=(1.0,))
        histogram.observe(0.5)
        histogram.observe(100.0)
        assert histogram.percentiles((99,))[99] == 100.0

    def test_values_clamped_to_observed_range(self):
        # One observation in a wide bucket: interpolation would land
        # mid-bucket, but no value outside [min, max] was ever seen.
        histogram = Histogram(buckets=(100.0,))
        histogram.observe(2.0)
        histogram.observe(3.0)
        values = histogram.percentiles((10, 50, 90))
        assert all(2.0 <= v <= 3.0 for v in values.values())

    def test_summary_uses_the_shared_walk(self):
        histogram = Histogram()
        for value in (0.2, 0.4, 0.6, 0.8, 2.0):
            histogram.observe(value)
        summary = histogram.summary()
        quantiles = histogram.percentiles((50, 90, 99))
        assert summary["p50"] == round(quantiles[50], 6)
        assert summary["p90"] == round(quantiles[90], 6)
        assert summary["p99"] == round(quantiles[99], 6)

    def test_percentiles_survive_merge(self):
        a, b = Histogram(buckets=(1.0, 2.0)), Histogram(buckets=(1.0, 2.0))
        for value in (0.5, 1.5):
            a.observe(value)
        b.merge_summary(a.summary())
        assert b.percentiles((50,)) == a.percentiles((50,))


def _sample_registry():
    metrics = MetricsRegistry()
    metrics.counter("curation.records", country="SY").inc(5)
    metrics.counter("curation.records", country="IN").inc(7)
    metrics.gauge("exec.shards.total").set(8.0)
    histogram = metrics.histogram("shard.seconds", buckets=(0.1, 1.0))
    for value in (0.05, 0.5, 5.0):
        histogram.observe(value)
    return metrics


class TestOpenMetrics:
    def test_counters_gain_total_suffix(self):
        text = _sample_registry().to_openmetrics()
        assert "# TYPE repro_curation_records counter" in text
        assert 'repro_curation_records_total{country="SY"} 5' in text
        assert 'repro_curation_records_total{country="IN"} 7' in text

    def test_gauges_keep_bare_name(self):
        text = _sample_registry().to_openmetrics()
        assert "# TYPE repro_exec_shards_total gauge" in text
        assert "repro_exec_shards_total 8" in text

    def test_histogram_buckets_are_cumulative(self):
        lines = _sample_registry().to_openmetrics().splitlines()
        buckets = [l for l in lines
                   if l.startswith("repro_shard_seconds_bucket")]
        assert [int(l.rsplit(" ", 1)[1]) for l in buckets] == [1, 2, 3]
        assert 'le="+Inf"' in buckets[-1]
        assert "repro_shard_seconds_count 3" in lines
        assert any(l.startswith("repro_shard_seconds_sum ")
                   for l in lines)

    def test_terminator_and_determinism(self):
        metrics = _sample_registry()
        text = metrics.to_openmetrics()
        assert text.endswith("# EOF\n")
        assert text == metrics.to_openmetrics()
        # Families are sorted by metric name; TYPE precedes samples.
        families = [l.split()[2] for l in text.splitlines()
                    if l.startswith("# TYPE")]
        assert families == sorted(families)

    def test_label_values_escaped(self):
        text = snapshot_to_openmetrics(
            {"counters": {'odd.series{note=a"b\\c}': 1}})
        assert 'note="a\\"b\\\\c"' in text

    def test_dotted_names_sanitized(self):
        text = snapshot_to_openmetrics(
            {"counters": {"platform.signal.cache.hits": 3}})
        assert "repro_platform_signal_cache_hits_total 3" in text

    def test_accepts_journal_metrics_event(self):
        # The journal's `metrics` event is a snapshot plus a `type`
        # key; the exposition must tolerate the extra key.
        snapshot = _sample_registry().snapshot()
        snapshot["type"] = "metrics"
        text = snapshot_to_openmetrics(snapshot)
        assert "repro_curation_records_total" in text

    def test_empty_snapshot_is_just_eof(self):
        assert snapshot_to_openmetrics({}) == "# EOF\n"

    def test_matches_registry_snapshot_round_trip(self):
        metrics = _sample_registry()
        assert metrics.to_openmetrics() \
            == snapshot_to_openmetrics(metrics.snapshot())


#: Route-shaped label values the serving layer can legally produce —
#: query strings with commas/equals, quotes, backslashes, braces,
#: newlines, and trailing escapes.
HOSTILE_VALUES = [
    "/events?cursor=djE6NTA6YWJj",
    "/events?country=SY,IR&limit=25",
    'say "hi"',
    "back\\slash",
    "tricky\\",
    "brace}value",
    "multi\nline",
    "a=b,c=d}e\\f\ng",
    "",
]


class TestHostileLabels:
    def test_series_key_round_trips_hostile_values(self):
        from repro.obs import series_key, split_series_key
        for value in HOSTILE_VALUES:
            key = series_key("serve.requests",
                             {"route": value, "status": "200"})
            name, labels = split_series_key(key)
            assert name == "serve.requests"
            assert labels == {"route": value, "status": "200"}, value

    def test_hostile_values_cannot_smuggle_clauses(self):
        from repro.obs import split_series_key, series_key
        key = series_key("m", {"a": "x,b=evil"})
        _, labels = split_series_key(key)
        assert labels == {"a": "x,b=evil"}
        assert "b" not in labels

    def test_registry_keeps_hostile_labels_as_one_series(self):
        metrics = MetricsRegistry()
        for _ in range(3):
            metrics.counter("serve.requests",
                            route="/events?cursor=a,b", status=200).inc()
        snapshot = metrics.snapshot()
        assert len(snapshot["counters"]) == 1
        assert list(snapshot["counters"].values()) == [3]

    def test_exposition_escapes_newline_quote_backslash(self):
        metrics = MetricsRegistry()
        metrics.counter("serve.requests",
                        route='a"b\\c\nd', status=200).inc()
        text = metrics.to_openmetrics()
        # The exposition grammar's escapes, not the series-key ones.
        assert 'route="a\\"b\\\\c\\nd"' in text
        assert "\n".join(l for l in text.splitlines()
                         if "route=" in l).count("\n") == 0

    def test_exposition_is_parseable_line_per_sample(self):
        metrics = MetricsRegistry()
        for value in HOSTILE_VALUES:
            metrics.counter("serve.requests", route=value).inc()
        lines = metrics.to_openmetrics().splitlines()
        samples = [l for l in lines if not l.startswith("#")]
        # One line per series: hostile values never split a sample
        # across lines or merge two samples onto one.
        assert len(samples) == len(HOSTILE_VALUES)
        assert all(l.rsplit(" ", 1)[1] == "1" for l in samples)


class TestCliExport:
    @pytest.fixture(scope="class")
    def journal(self, tmp_path_factory):
        path = tmp_path_factory.mktemp("metrics") / "run.jsonl"
        api.run(scenario_config=SMALL_CONFIG, study_period=SMALL_PERIOD,
                journal=path)
        return path

    def test_export_to_stdout(self, journal, capsys):
        assert main(["metrics", "export", str(journal)]) == 0
        out = capsys.readouterr().out
        assert out.endswith("# EOF\n")
        assert "# TYPE" in out
        assert "repro_" in out

    def test_export_to_file(self, journal, tmp_path, capsys):
        target = tmp_path / "metrics.om"
        assert main(["metrics", "export", str(journal),
                     "--output", str(target)]) == 0
        assert target.read_text(encoding="utf-8").endswith("# EOF\n")

    def test_export_without_snapshot_exits_2(self, tmp_path, capsys):
        path = tmp_path / "empty.jsonl"
        path.write_text(json.dumps({"type": "run_start"}) + "\n",
                        encoding="utf-8")
        assert main(["metrics", "export", str(path)]) == 2
        assert "error:" in capsys.readouterr().err

    def test_export_missing_journal_exits_2(self, tmp_path, capsys):
        assert main(["metrics", "export",
                     str(tmp_path / "nope.jsonl")]) == 2
        err = capsys.readouterr().err
        assert "error:" in err and "Traceback" not in err
