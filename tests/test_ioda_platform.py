"""Tests for the IODA platform's signal generation."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.ioda.platform import IODAPlatform, PlatformConfig
from repro.signals.entities import Entity, EntityScope
from repro.signals.kinds import SignalKind
from repro.timeutils.timestamps import DAY, HOUR, TimeRange
from repro.world.scenario import STUDY_PERIOD


def _event(scenario, iso2, pool="shutdowns", predicate=None):
    events = getattr(scenario, pool)
    for event in events:
        if event.country_iso2 != iso2:
            continue
        if not STUDY_PERIOD.contains(event.span.start):
            continue
        if predicate is None or predicate(event):
            return event
    raise AssertionError(f"no matching event for {iso2}")


def _window(event, lead=DAY, tail=12 * HOUR):
    return TimeRange(event.span.start - lead, event.span.end + tail)


class TestPlatformConfig:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            PlatformConfig(n_full_feed_peers=1)
        with pytest.raises(ConfigurationError):
            PlatformConfig(max_probed_blocks=2)


class TestCountrySignals:
    def test_all_three_signals_produced(self, platform, scenario):
        event = _event(scenario, "SY")
        signals = platform.country_signals("SY", _window(event))
        assert set(signals) == set(SignalKind)
        for kind, series in signals.items():
            assert series.width == kind.bin_width
            assert len(series) > 0

    def test_total_shutdown_drops_all_signals(self, platform, scenario):
        event = _event(scenario, "SY",
                       predicate=lambda e: e.severity == 1.0
                       and not e.mobile_only
                       and e.scope is EntityScope.COUNTRY)
        window = _window(event)
        mid = event.span.start + event.span.duration // 2
        for kind, series in platform.country_signals("SY", window).items():
            baseline = np.median(
                series.slice(TimeRange(window.start,
                                       event.span.start)).values)
            assert series.at(mid) < 0.3 * baseline, kind

    def test_mobile_only_invisible_to_probing(self, platform, scenario):
        event = _event(
            scenario, None if False else "IR", "shutdowns",
            predicate=lambda e: e.mobile_only
            and e.scope is EntityScope.COUNTRY)
        window = _window(event)
        series = platform.signal(Entity.country(event.country_iso2),
                                 SignalKind.ACTIVE_PROBING, window)
        pre = series.slice(
            TimeRange(window.start, event.span.start)).values
        during = series.slice(event.span).values
        assert during.mean() > 0.9 * np.median(pre)

    def test_partial_severity_partial_drop(self, platform, scenario):
        from repro.world.disruptions import Cause
        undamped = (Cause.CABLE_CUT, Cause.MISCONFIGURATION,
                    Cause.NATURAL_DISASTER)
        event = next(
            e for e in scenario.outages
            if STUDY_PERIOD.contains(e.span.start)
            and 0.4 <= e.severity <= 0.8
            and e.span.duration >= 2 * HOUR
            and e.cause in undamped)
        window = _window(event)
        series = platform.signal(Entity.country(event.country_iso2),
                                 SignalKind.BGP, window)
        baseline = np.median(series.slice(
            TimeRange(window.start, event.span.start)).values)
        mid = event.span.start + event.span.duration // 2
        observed_drop = 1.0 - series.at(mid) / baseline
        assert observed_drop == pytest.approx(event.severity, abs=0.15)

    def test_signals_deterministic_across_queries(self, platform, scenario):
        event = _event(scenario, "SY")
        window = _window(event)
        first = platform.signal(Entity.country("SY"), SignalKind.TELESCOPE,
                                window)
        second = platform.signal(Entity.country("SY"),
                                 SignalKind.TELESCOPE, window)
        assert np.array_equal(first.values, second.values)

    def test_unrelated_country_flat_during_event(self, platform, scenario):
        event = _event(scenario, "SY")
        window = _window(event)
        series = platform.signal(Entity.country("JP"), SignalKind.BGP,
                                 window)
        assert series.values.min() > 0.95 * series.values.max()


class TestScopedSignals:
    def test_region_signal_scales_down(self, platform, scenario):
        window = TimeRange(STUDY_PERIOD.start,
                           STUDY_PERIOD.start + 6 * HOUR)
        network = scenario.topology.get("IN")
        region = network.regions[0]
        country_series = platform.signal(
            Entity.country("IN"), SignalKind.BGP, window)
        region_series = platform.signal(
            Entity.region("IN", region.name), SignalKind.BGP, window)
        assert region_series.values.mean() < \
            0.6 * country_series.values.mean()

    def test_region_event_visible_in_region_not_country(
            self, platform, scenario):
        event = _event(scenario, "IN",
                       predicate=lambda e: e.scope is EntityScope.REGION
                       and not e.mobile_only)
        window = _window(event)
        region_series = platform.signal(
            Entity.region("IN", event.region_name), SignalKind.BGP, window)
        pre = np.median(region_series.slice(
            TimeRange(window.start, event.span.start)).values)
        mid = event.span.start + event.span.duration // 2
        assert region_series.at(mid) < 0.3 * pre
        country_series = platform.signal(
            Entity.country("IN"), SignalKind.BGP, window)
        pre_country = np.median(country_series.slice(
            TimeRange(window.start, event.span.start)).values)
        assert country_series.at(mid) > 0.7 * pre_country

    def test_as_signal(self, platform, scenario):
        network = scenario.topology.get("SY")
        asn = int(network.ases[0].asn)
        window = TimeRange(STUDY_PERIOD.start,
                           STUDY_PERIOD.start + 3 * HOUR)
        series = platform.signal(Entity.asn(asn), SignalKind.BGP, window)
        assert len(series) == 36


class TestArtifacts:
    def test_artifact_depresses_one_signal_globally(self, platform,
                                                    scenario):
        artifact = scenario.artifacts[0]
        window = artifact.span.expand(before=6 * HOUR, after=2 * HOUR)
        for iso2 in ("JP", "BR"):
            series = platform.signal(Entity.country(iso2), artifact.signal,
                                     window)
            pre = np.median(series.slice(
                TimeRange(window.start, artifact.span.start)).values)
            mid = artifact.span.start + artifact.span.duration // 2
            assert series.at(mid) < (1.0 - 0.5 * artifact.depth) * pre
