"""Tests for the KIO compiler, snapshots, and harmonizer."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import SchemaError
from repro.kio.compiler import KIOCompiler, KIOCompilerConfig
from repro.kio.harmonize import Harmonizer
from repro.kio.schema import KIOCategory, KIOEvent, NetworkType
from repro.kio.snapshots import AnnualSnapshot, dialect_for_year
from repro.timeutils.timestamps import DAY, utc

YEARS = range(2016, 2022)


@pytest.fixture(scope="module")
def kio_events(scenario):
    compiler = KIOCompiler(scenario.seed, scenario.registry)
    return compiler.compile(scenario.shutdowns, scenario.restrictions,
                            YEARS)


class TestSchema:
    def test_event_validation(self):
        with pytest.raises(SchemaError):
            KIOEvent(event_id=1, year=2020, country_name="Syria",
                     start_day=100, end_day=99,
                     categories=(KIOCategory.FULL_NETWORK,),
                     networks=NetworkType.BOTH, nationwide=True)
        with pytest.raises(SchemaError):
            KIOEvent(event_id=1, year=2020, country_name="Syria",
                     start_day=100, end_day=101, categories=(),
                     networks=NetworkType.BOTH, nationwide=True)

    def test_duration_inclusive(self):
        event = KIOEvent(event_id=1, year=2020, country_name="Syria",
                         start_day=100, end_day=100,
                         categories=(KIOCategory.FULL_NETWORK,),
                         networks=NetworkType.BOTH, nationwide=True)
        assert event.duration_days == 1


class TestCompiler:
    def test_series_collapse(self, kio_events, scenario):
        """Each exam series becomes at most one entry."""
        exam_series_ids = {d.series_id for d in scenario.shutdowns
                           if d.series_id and "exams" in d.series_id}
        exam_days = sum(
            1 for d in scenario.shutdowns
            if d.series_id and "exams" in d.series_id)
        exam_entries = [e for e in kio_events
                        if "exam" in e.description]
        assert len(exam_entries) <= len(exam_series_ids)
        assert len(exam_entries) < exam_days / 3

    def test_multi_week_series_span(self, kio_events):
        spans = [e.duration_days for e in kio_events
                 if "exam" in e.description]
        assert spans and max(spans) >= 8

    def test_categories_union_over_series(self, kio_events):
        full = [e for e in kio_events if e.is_full_network]
        assert full
        with_service = [e for e in full
                        if KIOCategory.SERVICE_BASED in e.categories]
        assert with_service  # shutdown + ban events exist

    def test_soft_restrictions_not_full_network(self, kio_events):
        soft = [e for e in kio_events
                if e.description == "soft restriction"]
        assert soft
        assert all(not e.is_full_network for e in soft)

    def test_mobile_only_events_marked(self, kio_events):
        assert any(e.networks is NetworkType.MOBILE for e in kio_events)

    def test_coverage_incomplete(self, scenario):
        lossy = KIOCompiler(
            scenario.seed, scenario.registry,
            KIOCompilerConfig(p_report_national=0.3,
                              p_report_subnational=0.3,
                              p_report_restriction=0.3))
        full = KIOCompiler(
            scenario.seed, scenario.registry,
            KIOCompilerConfig(p_report_national=1.0,
                              p_report_subnational=1.0,
                              p_report_restriction=1.0))
        n_lossy = len(lossy.compile(scenario.shutdowns,
                                    scenario.restrictions, YEARS))
        n_full = len(full.compile(scenario.shutdowns,
                                  scenario.restrictions, YEARS))
        assert n_lossy < 0.6 * n_full

    def test_publication_date_errors_shift_starts_late(self, scenario):
        config = KIOCompilerConfig(p_publication_date=1.0,
                                   p_timezone_slip=0.0)
        shifted = KIOCompiler(scenario.seed, scenario.registry, config)
        true_dates = KIOCompiler(
            scenario.seed, scenario.registry,
            KIOCompilerConfig(p_publication_date=0.0, p_timezone_slip=0.0))
        shifted_events = {
            e.description: e.start_day
            for e in shifted.compile(scenario.shutdowns, (), YEARS)}
        true_events = {
            e.description: e.start_day
            for e in true_dates.compile(scenario.shutdowns, (), YEARS)}
        deltas = [shifted_events[k] - true_events[k]
                  for k in shifted_events if k in true_events]
        assert deltas and all(1 <= d <= 3 for d in deltas)

    def test_name_variants_emitted(self, kio_events, registry):
        names = {e.country_name for e in kio_events}
        canonical = {c.name for c in registry}
        assert names - canonical, "expected some alias spellings"
        for name in names:
            registry.by_name(name)  # all resolvable


class TestSnapshotsAndHarmonizer:
    def test_dialect_assignment(self):
        assert dialect_for_year(2016) == "v1"
        assert dialect_for_year(2019) == "v2"
        assert dialect_for_year(2021) == "v3"
        with pytest.raises(SchemaError):
            dialect_for_year(2025)

    def test_serialize_filters_by_year(self, kio_events):
        snapshot = AnnualSnapshot.serialize(2019, kio_events)
        assert len(snapshot) == sum(1 for e in kio_events
                                    if e.year == 2019)

    def test_roundtrip_preserves_semantics(self, kio_events):
        snapshots = [AnnualSnapshot.serialize(y, kio_events) for y in YEARS]
        recovered = Harmonizer().harmonize(snapshots)
        assert len(recovered) == len(kio_events)
        original = {e.event_id: e for e in kio_events}
        for event in recovered:
            source = original[event.event_id]
            assert event.start_day == source.start_day
            assert event.end_day == source.end_day
            assert set(event.categories) == set(source.categories)
            assert event.networks == source.networks
            assert event.nationwide == source.nationwide
            assert event.country_name == source.country_name
            assert set(event.regions) == set(source.regions)

    def test_unknown_dialect_rejected(self):
        snapshot = AnnualSnapshot(year=2019, dialect="v9", rows=[])
        with pytest.raises(SchemaError):
            Harmonizer().harmonize([snapshot])

    def test_missing_field_rejected(self):
        snapshot = AnnualSnapshot(year=2019, dialect="v2",
                                  rows=[{"Country": "Syria"}])
        with pytest.raises(SchemaError):
            Harmonizer().harmonize([snapshot])

    def test_bad_date_rejected(self):
        row = {
            "Country": "Syria", "Start Date": "31/12/2019",
            "End Date": "2019-12-31", "Type of Shutdown": "Full network",
            "Geographic Scope": "Nationwide",
            "Networks Affected": "Mobile", "event_id": 1,
        }
        with pytest.raises(SchemaError):
            Harmonizer().harmonize(
                [AnnualSnapshot(year=2019, dialect="v2", rows=[row])])

    @settings(max_examples=30, deadline=None)
    @given(st.integers(min_value=0, max_value=2),
           st.booleans(),
           st.sampled_from(list(NetworkType)),
           st.integers(min_value=utc(2016, 1, 2) // DAY,
                       max_value=utc(2021, 12, 20) // DAY),
           st.integers(min_value=0, max_value=30))
    def test_roundtrip_property(self, category_mask, nationwide, networks,
                                start_day, span):
        categories = [
            (KIOCategory.FULL_NETWORK,),
            (KIOCategory.SERVICE_BASED, KIOCategory.THROTTLING),
            (KIOCategory.FULL_NETWORK, KIOCategory.SERVICE_BASED),
        ][category_mask]
        import time
        year = time.gmtime(start_day * DAY).tm_year
        event = KIOEvent(
            event_id=77, year=year, country_name="Syria",
            start_day=start_day, end_day=start_day + span,
            categories=categories, networks=networks,
            nationwide=nationwide,
            regions=() if nationwide else ("SY-REG01",))
        snapshot = AnnualSnapshot.serialize(year, [event])
        recovered = Harmonizer().harmonize([snapshot])[0]
        assert recovered.start_day == event.start_day
        assert recovered.end_day == event.end_day
        assert set(recovered.categories) == set(event.categories)
        assert recovered.networks == event.networks
        assert recovered.nationwide == event.nationwide
