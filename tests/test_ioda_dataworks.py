"""Tests for the DataWorks review pass."""

from dataclasses import replace

import pytest

from repro.ioda.dataworks import DataWorksReviewer
from repro.signals.entities import EntityScope
from repro.signals.kinds import SignalKind


@pytest.fixture(scope="module")
def reviewer(platform):
    return DataWorksReviewer(platform)


@pytest.fixture(scope="module")
def country_records(pipeline_result):
    return [r for r in pipeline_result.curated_records
            if r.scope is EntityScope.COUNTRY][:60]


class TestDataWorksReviewer:
    def test_well_curated_records_mostly_agree(self, reviewer,
                                               country_records):
        rate = reviewer.agreement_rate(country_records)
        assert rate > 0.7

    def test_corrections_predominantly_fill_missing_flags(
            self, reviewer, country_records):
        """DataWorks was hired to *add missing* visibility fields
        (§3.1.2); most corrections should turn False flags True for
        drops the first pass under-recorded, not retract existing
        flags."""
        _, changed = reviewer.review_all(country_records)
        additions = sum(
            1 for outcome in changed for c in outcome.corrections
            if "recorded False" in c)
        retractions = sum(
            1 for outcome in changed for c in outcome.corrections
            if "recorded True" in c)
        assert additions >= retractions

    def test_corrupted_flag_gets_fixed(self, reviewer, country_records):
        # Take a record visible in all three signals and corrupt one flag.
        record = next(r for r in country_records
                      if r.visible_in_all_signals
                      and r.span.duration >= 2 * 3600)
        corrupted_flags = dict(record.human_visible)
        corrupted_flags[SignalKind.BGP] = False
        corrupted = replace(record, human_visible=corrupted_flags)
        outcome = reviewer.review(corrupted)
        assert outcome.corrected
        assert outcome.record.human_visible[SignalKind.BGP]
        assert any("BGP" in c for c in outcome.corrections)

    def test_review_preserves_identity_fields(self, reviewer,
                                              country_records):
        record = country_records[0]
        outcome = reviewer.review(record)
        assert outcome.record.record_id == record.record_id
        assert outcome.record.span == record.span
        assert outcome.record.cause == record.cause

    def test_never_leaves_record_fully_invisible(self, reviewer,
                                                 country_records):
        for record in country_records[:20]:
            outcome = reviewer.review(record)
            assert any(outcome.record.human_visible.values())

    def test_review_all_returns_aligned_lists(self, reviewer,
                                              country_records):
        reviewed, changed = reviewer.review_all(country_records[:20])
        assert len(reviewed) == 20
        assert all(o.corrected for o in changed)

    def test_agreement_rate_empty(self, reviewer):
        assert reviewer.agreement_rate([]) == 1.0
