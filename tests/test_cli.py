"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main
from tests.conftest import CACHE_DIR


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.seed == 2023
        assert args.command == "run"

    def test_signals_arguments(self):
        args = build_parser().parse_args(
            ["signals", "SY", "2018-06-13", "2018-06-14"])
        assert args.country == "SY"

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    def test_executor_flags(self):
        args = build_parser().parse_args(
            ["--workers", "4", "--backend", "process", "--shards", "3",
             "run", "--stats", "--json"])
        assert (args.workers, args.backend, args.shards) == (4, "process", 3)
        assert args.stats and args.json

    def test_unknown_backend_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--backend", "mpi", "run"])

    def test_invalid_executor_values_exit_cleanly(self, capsys):
        assert main(["--workers", "0", "run"]) == 2
        assert "workers must be >= 1" in capsys.readouterr().err
        assert main(["--shards", "0", "run"]) == 2
        assert "n_shards must be >= 1" in capsys.readouterr().err


class TestCommands:
    def test_signals_command(self, capsys):
        status = main(["--cache-dir", str(CACHE_DIR), "signals", "SY",
                       "2018-06-13 12:00", "2018-06-13 18:00"])
        assert status == 0
        output = capsys.readouterr().out
        assert "Syria" in output
        assert "BGP" in output and "Telescope" in output

    def test_signals_accepts_country_name(self, capsys):
        status = main(["--cache-dir", str(CACHE_DIR), "signals",
                       "Ivory Coast", "2018-06-13", "2018-06-14"])
        assert status == 0
        assert "CI" in capsys.readouterr().out

    def test_run_command_uses_cache(self, capsys, pipeline_result):
        status = main(["--cache-dir", str(CACHE_DIR), "run"])
        assert status == 0
        output = capsys.readouterr().out
        assert "Table 2" in output
        assert "IODA shutdowns" in output

    def test_run_stats_json_is_machine_readable(self, capsys,
                                                pipeline_result):
        import json
        status = main(["--cache-dir", str(CACHE_DIR), "--workers", "2",
                       "run", "--stats", "--json"])
        assert status == 0
        report = json.loads(capsys.readouterr().out)
        assert report["workers"] == 2
        assert report["cache"]["hits"] == report["n_shards"]
        assert report["cache"]["curate_skipped"]

    def test_export_command(self, capsys, tmp_path, pipeline_result):
        status = main(["--cache-dir", str(CACHE_DIR), "export",
                       "--output-dir", str(tmp_path)])
        assert status == 0
        assert (tmp_path / "ioda_outage_records.json").exists()
        assert (tmp_path / "kio_events.json").exists()

    def test_report_command(self, capsys, tmp_path, pipeline_result):
        output = tmp_path / "EXPERIMENTS.md"
        status = main(["--cache-dir", str(CACHE_DIR), "report",
                       "--output", str(output)])
        assert status == 0
        text = output.read_text(encoding="utf-8")
        assert "paper vs reproduction" in text
        assert "| Table 4 |" in text

    def test_figures_command(self, capsys, tmp_path, pipeline_result):
        status = main(["--cache-dir", str(CACHE_DIR), "figures",
                       "--output-dir", str(tmp_path)])
        assert status == 0
        assert (tmp_path / "fig10_duration_hours.csv").exists()
        assert len(list(tmp_path.glob("*.csv"))) >= 18

    def test_triage_command(self, capsys, pipeline_result):
        status = main(["--cache-dir", str(CACHE_DIR), "triage",
                       "--limit", "3"])
        assert status == 0
        output = capsys.readouterr().out
        assert "autocracy?" in output
