"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main
from tests.conftest import CACHE_DIR


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.seed == 2023
        assert args.command == "run"

    def test_signals_arguments(self):
        args = build_parser().parse_args(
            ["signals", "SY", "2018-06-13", "2018-06-14"])
        assert args.country == "SY"

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    def test_executor_flags(self):
        args = build_parser().parse_args(
            ["--workers", "4", "--backend", "process", "--shards", "3",
             "run", "--stats", "--json"])
        assert (args.workers, args.backend, args.shards) == (4, "process", 3)
        assert args.stats and args.json

    def test_unknown_backend_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--backend", "mpi", "run"])

    def test_invalid_executor_values_exit_cleanly(self, capsys):
        assert main(["--workers", "0", "run"]) == 2
        assert "workers must be >= 1" in capsys.readouterr().err
        assert main(["--shards", "0", "run"]) == 2
        assert "n_shards must be >= 1" in capsys.readouterr().err

    def test_observability_flags(self):
        args = build_parser().parse_args(
            ["run", "--trace", "t.json", "--journal", "r.jsonl",
             "--metrics-json", "m.json"])
        assert (str(args.trace), str(args.journal),
                str(args.metrics_json)) == ("t.json", "r.jsonl", "m.json")

    def test_trace_summarize_arguments(self):
        args = build_parser().parse_args(
            ["trace", "summarize", "RUN.jsonl", "--top", "3"])
        assert args.command == "trace"
        assert args.trace_command == "summarize"
        assert (str(args.journal), args.top) == ("RUN.jsonl", 3)

    def test_trace_requires_a_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["trace"])

    def test_profile_and_health_flags(self):
        args = build_parser().parse_args(
            ["run", "--profile", "--health"])
        assert args.profile and args.health
        assert args.profile_alloc is None
        args = build_parser().parse_args(
            ["run", "--profile-alloc", "5"])
        assert args.profile_alloc == 5

    def test_stream_arguments(self):
        args = build_parser().parse_args(
            ["stream", "--step", "30d", "--events", "--health",
             "--run-name", "live"])
        assert args.command == "stream"
        assert args.step == "30d"
        assert args.events and args.health
        assert args.run_name == "live"

    def test_stream_defaults(self):
        args = build_parser().parse_args(["stream"])
        assert args.step == "7d"
        assert not args.events

    def test_health_command_arguments(self):
        args = build_parser().parse_args(
            ["health", "RUN.jsonl", "--json", "--strict"])
        assert args.command == "health"
        assert str(args.journal) == "RUN.jsonl"
        assert args.json and args.strict

    def test_perf_subcommands(self):
        args = build_parser().parse_args(["perf", "record", "main"])
        assert (args.perf_command, args.name) == ("record", "main")
        args = build_parser().parse_args(
            ["perf", "compare", "main", "--tolerance", "2.5",
             "--min-seconds", "0.5"])
        assert args.perf_command == "compare"
        assert (args.tolerance, args.min_seconds) == (2.5, 0.5)
        args = build_parser().parse_args(
            ["perf", "report", "--dir", "b"])
        assert args.perf_command == "report"
        assert str(args.baseline_dir) == "b"

    def test_perf_requires_a_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["perf"])

    def test_resilience_flags(self):
        args = build_parser().parse_args(
            ["run", "--inject-faults", "fail_first=2;seed=5",
             "--max-retries", "5", "--fail-fast"])
        assert args.inject_faults == "fail_first=2;seed=5"
        assert args.max_retries == 5
        assert args.fail_fast

    def test_degrade_is_the_default_failure_mode(self):
        args = build_parser().parse_args(["run", "--degrade"])
        assert not args.fail_fast
        assert not build_parser().parse_args(["run"]).fail_fast

    def test_fail_fast_and_degrade_conflict(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--fail-fast", "--degrade"])

    def test_bad_fault_spec_exits_cleanly(self, capsys):
        assert main(["run", "--inject-faults", "frequency=0.5"]) == 2
        assert "fault clause" in capsys.readouterr().err


class TestCommands:
    def test_signals_command(self, capsys):
        status = main(["--cache-dir", str(CACHE_DIR), "signals", "SY",
                       "2018-06-13 12:00", "2018-06-13 18:00"])
        assert status == 0
        output = capsys.readouterr().out
        assert "Syria" in output
        assert "BGP" in output and "Telescope" in output

    def test_signals_accepts_country_name(self, capsys):
        status = main(["--cache-dir", str(CACHE_DIR), "signals",
                       "Ivory Coast", "2018-06-13", "2018-06-14"])
        assert status == 0
        assert "CI" in capsys.readouterr().out

    def test_run_command_uses_cache(self, capsys, pipeline_result):
        status = main(["--cache-dir", str(CACHE_DIR), "run"])
        assert status == 0
        output = capsys.readouterr().out
        assert "Table 2" in output
        assert "IODA shutdowns" in output

    def test_run_stats_json_is_machine_readable(self, capsys,
                                                pipeline_result):
        import json
        status = main(["--cache-dir", str(CACHE_DIR), "--workers", "2",
                       "run", "--stats", "--json"])
        assert status == 0
        report = json.loads(capsys.readouterr().out)
        assert report["workers"] == 2
        assert report["cache"]["hits"] == report["n_shards"]
        assert report["cache"]["curate_skipped"]

    def test_export_command(self, capsys, tmp_path, pipeline_result):
        status = main(["--cache-dir", str(CACHE_DIR), "export",
                       "--output-dir", str(tmp_path)])
        assert status == 0
        assert (tmp_path / "ioda_outage_records.json").exists()
        assert (tmp_path / "kio_events.json").exists()

    def test_report_command(self, capsys, tmp_path, pipeline_result):
        output = tmp_path / "EXPERIMENTS.md"
        status = main(["--cache-dir", str(CACHE_DIR), "report",
                       "--output", str(output)])
        assert status == 0
        text = output.read_text(encoding="utf-8")
        assert "paper vs reproduction" in text
        assert "| Table 4 |" in text

    def test_figures_command(self, capsys, tmp_path, pipeline_result):
        status = main(["--cache-dir", str(CACHE_DIR), "figures",
                       "--output-dir", str(tmp_path)])
        assert status == 0
        assert (tmp_path / "fig10_duration_hours.csv").exists()
        assert len(list(tmp_path.glob("*.csv"))) >= 18

    def test_triage_command(self, capsys, pipeline_result):
        status = main(["--cache-dir", str(CACHE_DIR), "triage",
                       "--limit", "3"])
        assert status == 0
        output = capsys.readouterr().out
        assert "autocracy?" in output


class TestObservability:
    def test_run_writes_trace_journal_and_metrics(self, capsys, tmp_path,
                                                  pipeline_result):
        import json
        trace = tmp_path / "trace.json"
        journal = tmp_path / "run.jsonl"
        metrics = tmp_path / "metrics.json"
        status = main(["--cache-dir", str(CACHE_DIR), "run",
                       "--trace", str(trace), "--journal", str(journal),
                       "--metrics-json", str(metrics)])
        assert status == 0
        output = capsys.readouterr().out
        assert f"wrote {trace}" in output
        document = json.loads(trace.read_text(encoding="utf-8"))
        assert any(e["name"] == "stage:curate"
                   for e in document["traceEvents"])
        snapshot = json.loads(metrics.read_text(encoding="utf-8"))
        assert snapshot["counters"]
        first = json.loads(
            journal.read_text(encoding="utf-8").splitlines()[0])
        assert first["type"] == "run_start"

    def test_stats_json_stays_machine_readable_with_exports(
            self, capsys, tmp_path, pipeline_result):
        import json
        metrics = tmp_path / "metrics.json"
        status = main(["--cache-dir", str(CACHE_DIR), "run", "--stats",
                       "--json", "--metrics-json", str(metrics)])
        assert status == 0
        captured = capsys.readouterr()
        report = json.loads(captured.out)  # stdout is still pure JSON
        assert set(report) >= {"stages", "cache", "shards"}
        assert f"wrote {metrics}" in captured.err

    def test_trace_summarize_replays_a_journal(self, capsys, tmp_path,
                                               pipeline_result):
        journal = tmp_path / "run.jsonl"
        assert main(["--cache-dir", str(CACHE_DIR), "run",
                     "--journal", str(journal)]) == 0
        capsys.readouterr()
        status = main(["trace", "summarize", str(journal), "--top", "5"])
        assert status == 0
        output = capsys.readouterr().out
        assert "slowest spans" in output
        assert "stage:curate" in output

    def test_trace_summarize_missing_journal_exits_2(self, capsys,
                                                     tmp_path):
        status = main(["trace", "summarize",
                       str(tmp_path / "nope.jsonl")])
        assert status == 2
        assert "no such journal" in capsys.readouterr().err

    def test_trace_summarize_empty_journal_exits_2(self, capsys,
                                                   tmp_path):
        empty = tmp_path / "empty.jsonl"
        empty.write_text("", encoding="utf-8")
        assert main(["trace", "summarize", str(empty)]) == 2
        assert "empty or unreadable" in capsys.readouterr().err


class TestResilienceFlags:
    """CLI resilience plumbing on the small test scenario.

    ``repro run`` always covers the full study period, which is too
    slow for chaos runs that must bypass the cache — so these tests
    shrink the run by patching the CLI's pipeline construction, and
    exercise the real flag parsing, resilience wiring, and exit-status
    handling around it.
    """

    @pytest.fixture()
    def small_cli(self, monkeypatch):
        from repro.timeutils.timestamps import TimeRange, utc
        from repro.world.scenario import ScenarioConfig

        monkeypatch.setattr(
            "repro.cli.ScenarioConfig",
            lambda seed: ScenarioConfig(seed=seed, years=(2018,)))
        monkeypatch.setattr(
            "repro.cli.STUDY_PERIOD",
            TimeRange(utc(2018, 1, 1), utc(2018, 7, 1)))

    def test_chaos_run_recovers_and_reports_clean(self, capsys, tmp_path,
                                                  small_cli):
        import json
        status = main(["--seed", "7", "--cache-dir", str(tmp_path), "run",
                       "--stats", "--json",
                       "--inject-faults", "fail_first=1;seed=3"])
        assert status == 0
        report = json.loads(capsys.readouterr().out)
        assert report["degraded"] is False
        assert report["quarantined"] == []
        # The fault plan bypasses the cache in both directions.
        assert report["cache"]["hits"] == 0
        assert not list(tmp_path.glob("curate-*.json"))

    def test_permanent_fault_degrades_run(self, capsys, tmp_path,
                                          small_cli):
        import json
        status = main(["--seed", "7", "--cache-dir", str(tmp_path), "run",
                       "--stats", "--json",
                       "--inject-faults", "permanent=SY", "--degrade"])
        assert status == 0
        report = json.loads(capsys.readouterr().out)
        assert report["degraded"] is True
        assert report["quarantined"] == ["SY"]

    def test_fail_fast_exits_2(self, capsys, tmp_path, small_cli):
        status = main(["--seed", "7", "--cache-dir", str(tmp_path), "run",
                       "--inject-faults", "permanent=SY", "--fail-fast"])
        assert status == 2
        assert "repro: error:" in capsys.readouterr().err


class TestHealthAndPerf:
    """The health/perf commands on the small test scenario.

    Like :class:`TestResilienceFlags`, these shrink the run by patching
    the CLI's pipeline construction and exercise the real wiring and
    exit-status contracts around it.
    """

    @pytest.fixture()
    def small_cli(self, monkeypatch):
        from repro.timeutils.timestamps import TimeRange, utc
        from repro.world.scenario import ScenarioConfig

        monkeypatch.setattr(
            "repro.cli.ScenarioConfig",
            lambda seed: ScenarioConfig(seed=seed, years=(2018,)))
        monkeypatch.setattr(
            "repro.cli.STUDY_PERIOD",
            TimeRange(utc(2018, 1, 1), utc(2018, 7, 1)))

    def test_run_health_renders_the_scorecard(self, capsys, tmp_path,
                                              small_cli):
        status = main(["--seed", "7", "--cache-dir", str(tmp_path), "run",
                       "--health"])
        assert status == 0
        output = capsys.readouterr().out
        assert "== Health ==" in output
        assert "events.union_shutdowns" in output

    def test_stats_json_embeds_health_only_on_request(self, capsys,
                                                      tmp_path, small_cli):
        import json
        assert main(["--seed", "7", "--cache-dir", str(tmp_path), "run",
                     "--stats", "--json"]) == 0
        plain = json.loads(capsys.readouterr().out)
        assert "health" not in plain
        assert main(["--seed", "7", "--cache-dir", str(tmp_path), "run",
                     "--stats", "--json", "--health"]) == 0
        enriched = json.loads(capsys.readouterr().out)
        assert enriched["health"]["grade"] in ("pass", "warn", "fail")
        assert set(enriched) == set(plain) | {"health"}

    def test_health_command_replays_the_journal(self, capsys, tmp_path,
                                                small_cli):
        import json
        journal = tmp_path / "run.jsonl"
        assert main(["--seed", "7", "--cache-dir", str(tmp_path), "run",
                     "--journal", str(journal)]) == 0
        capsys.readouterr()
        status = main(["health", str(journal), "--json"])
        payload = json.loads(capsys.readouterr().out)
        assert payload["grade"] in ("pass", "warn", "fail")
        # Exit status mirrors the grade: 0 unless the run failed.
        assert status == (1 if payload["grade"] == "fail" else 0)

    def test_health_command_missing_journal_exits_2(self, capsys,
                                                    tmp_path):
        assert main(["health", str(tmp_path / "nope.jsonl")]) == 2
        assert "no such journal" in capsys.readouterr().err

    def test_health_command_without_health_record_exits_2(self, capsys,
                                                          tmp_path):
        journal = tmp_path / "bare.jsonl"
        journal.write_text('{"type": "run_start"}\n', encoding="utf-8")
        assert main(["health", str(journal)]) == 2
        assert "no health record" in capsys.readouterr().err

    def test_perf_record_then_compare_is_clean(self, capsys, tmp_path,
                                               small_cli):
        baselines = tmp_path / "baselines"
        assert main(["--seed", "7", "--cache-dir", str(tmp_path / "c"),
                     "perf", "record", "main",
                     "--dir", str(baselines)]) == 0
        assert (baselines / "main.json").exists()
        capsys.readouterr()
        # Unchanged config and a warm cache: same fidelity, ample perf
        # headroom — the CI contract is exit 0.
        status = main(["--seed", "7", "--cache-dir", str(tmp_path / "c"),
                       "perf", "compare", "main",
                       "--dir", str(baselines)])
        assert status == 0
        assert "OK" in capsys.readouterr().out

    def test_perf_compare_flags_deliberate_violation(self, capsys,
                                                     tmp_path, small_cli):
        import json
        baselines = tmp_path / "baselines"
        assert main(["--seed", "7", "--cache-dir", str(tmp_path / "c"),
                     "perf", "record", "main",
                     "--dir", str(baselines)]) == 0
        # Tamper the stored baseline: an impossibly fast total plus a
        # fidelity drift must both be flagged.
        path = baselines / "main.json"
        data = json.loads(path.read_text(encoding="utf-8"))
        data["perf"]["perf.total_seconds"] = 0.0
        data["fidelity"]["records.curated"] += 1
        path.write_text(json.dumps(data), encoding="utf-8")
        capsys.readouterr()
        status = main(["--seed", "7", "--cache-dir", str(tmp_path / "c"),
                       "perf", "compare", "main", "--dir", str(baselines),
                       "--tolerance", "0", "--min-seconds", "0"])
        assert status == 1
        output = capsys.readouterr().out
        assert "REGRESSION" in output
        assert "records.curated" in output

    def test_perf_compare_missing_baseline_exits_2(self, capsys,
                                                   tmp_path, small_cli):
        status = main(["perf", "compare", "ghost",
                       "--dir", str(tmp_path)])
        assert status == 2
        assert "no such baseline" in capsys.readouterr().err

    def test_perf_report_renders_the_trajectory(self, capsys, tmp_path,
                                                small_cli):
        baselines = tmp_path / "baselines"
        assert main(["--seed", "7", "--cache-dir", str(tmp_path / "c"),
                     "perf", "record", "main",
                     "--dir", str(baselines)]) == 0
        capsys.readouterr()
        assert main(["perf", "report", "--dir", str(baselines)]) == 0
        output = capsys.readouterr().out
        assert "main" in output and "total_s" in output

    def test_perf_report_without_baselines_exits_2(self, capsys,
                                                   tmp_path):
        assert main(["perf", "report", "--dir", str(tmp_path)]) == 2
        assert "no baselines" in capsys.readouterr().err


class TestStreamCommand:
    """The stream subcommand on the small test scenario.

    Shrinks the run the same way :class:`TestResilienceFlags` does; the
    watermark replay, event listing, and step parsing are the real
    code paths.
    """

    @pytest.fixture()
    def small_cli(self, monkeypatch):
        from repro.timeutils.timestamps import TimeRange, utc
        from repro.world.scenario import ScenarioConfig

        monkeypatch.setattr(
            "repro.cli.ScenarioConfig",
            lambda seed: ScenarioConfig(seed=seed, years=(2018,)))
        monkeypatch.setattr(
            "repro.cli.STUDY_PERIOD",
            TimeRange(utc(2018, 1, 1), utc(2018, 5, 1)))

    def test_stream_replays_to_horizon(self, capsys, small_cli):
        status = main(["--seed", "7", "stream", "--step", "14d"])
        assert status == 0
        out = capsys.readouterr().out
        assert "streamed to horizon" in out
        assert "curated records" in out
        assert "watermark" in out  # per-advance progress lines

    def test_stream_events_listing(self, capsys, small_cli):
        status = main(["--seed", "7", "stream", "--step", "28d",
                       "--events"])
        assert status == 0
        out = capsys.readouterr().out
        assert "  open " in out or " open" in out
        assert "-> recorded" in out

    def test_stream_journals_lifecycle_events(self, capsys, tmp_path,
                                              small_cli):
        import json
        journal = tmp_path / "stream.jsonl"
        status = main(["--seed", "7", "stream", "--step", "28d",
                       "--journal", str(journal)])
        assert status == 0
        lines = [json.loads(line)
                 for line in journal.read_text().splitlines()]
        assert any(l["type"] == "stream.event" for l in lines)

    def test_stream_bad_step_exits_2(self, capsys, small_cli):
        status = main(["stream", "--step", "bogus"])
        assert status == 2
        assert "repro: error:" in capsys.readouterr().err


class TestCacheDirFallback:
    def test_unwritable_cache_dir_warns_and_runs_uncached(self, capsys,
                                                          tmp_path):
        # A regular file where the cache dir should go breaks mkdir even
        # for root; `signals` is the cheapest command that probes it.
        blocker = tmp_path / "blocker"
        blocker.write_text("", encoding="utf-8")
        status = main(["--cache-dir", str(blocker / "cache"), "signals",
                       "SY", "2018-06-13 12:00", "2018-06-13 13:00"])
        assert status == 0
        captured = capsys.readouterr()
        assert "not writable" in captured.err
        assert "running uncached" in captured.err
        assert "Syria" in captured.out

    def test_writable_cache_dir_does_not_warn(self, capsys, tmp_path):
        status = main(["--cache-dir", str(tmp_path / "cache"), "signals",
                       "SY", "2018-06-13 12:00", "2018-06-13 13:00"])
        assert status == 0
        assert "not writable" not in capsys.readouterr().err


class TestSignalErrorHandling:
    def test_empty_merged_dataset_exits_2(self, capsys, monkeypatch,
                                          pipeline_result):
        from repro.errors import SignalError

        def explode(merged):
            raise SignalError("no events to summarize")

        monkeypatch.setattr("repro.cli.observability_table", explode)
        status = main(["--cache-dir", str(CACHE_DIR), "run"])
        assert status == 2
        captured = capsys.readouterr()
        assert "repro: error: no events to summarize" in captured.err
