"""Tests for the statistics substrate."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.errors import SignalError
from repro.stats.binomial import binomial_pmf, binomial_test_two_tailed
from repro.stats.contingency import DayLevelContingency
from repro.stats.descriptive import (
    fraction,
    fraction_multiple_of,
    mean,
    median,
    quantile,
)
from repro.stats.ecdf import ECDF
from repro.stats.rolling import RollingMedian, rolling_median

scipy_stats = pytest.importorskip("scipy.stats")


class TestECDF:
    def test_basic_values(self):
        cdf = ECDF.from_samples([1, 2, 2, 4])
        assert cdf(0) == 0.0
        assert cdf(1) == 0.25
        assert cdf(2) == 0.75
        assert cdf(4) == 1.0
        assert cdf.survival(2) == 0.25

    def test_empty_rejected(self):
        with pytest.raises(SignalError):
            ECDF.from_samples([])

    def test_median_and_quantiles(self):
        cdf = ECDF.from_samples([10, 20, 30, 40])
        assert cdf.quantile(0.25) == 10
        assert cdf.quantile(0.5) == 20
        assert cdf.quantile(1.0) == 40

    def test_quantile_bounds(self):
        cdf = ECDF.from_samples([1])
        with pytest.raises(SignalError):
            cdf.quantile(0.0)
        with pytest.raises(SignalError):
            cdf.quantile(1.5)

    def test_points_monotone_reaching_one(self):
        cdf = ECDF.from_samples([3, 1, 4, 1, 5])
        points = cdf.points()
        xs = [x for x, _ in points]
        ys = [y for _, y in points]
        assert xs == sorted(xs)
        assert ys == sorted(ys)
        assert ys[-1] == 1.0

    def test_mass_at(self):
        cdf = ECDF.from_samples([1, 2, 2, 3])
        assert cdf.mass_at(2) == 0.5
        assert cdf.mass_at(9) == 0.0

    @given(st.lists(st.floats(allow_nan=False, allow_infinity=False,
                              min_value=-1e9, max_value=1e9),
                    min_size=1, max_size=200),
           st.floats(min_value=0.01, max_value=1.0))
    def test_quantile_inverts_cdf(self, samples, q):
        cdf = ECDF.from_samples(samples)
        value = cdf.quantile(q)
        assert cdf(value) >= q - 1e-12
        # No smaller sample value reaches level q.
        smaller = [s for s in cdf.sorted_samples if s < value]
        if smaller:
            assert cdf(smaller[-1]) < q + 1e-9


class TestDescriptive:
    def test_median_odd_even(self):
        assert median([3, 1, 2]) == 2
        assert median([1, 2, 3, 4]) == 2.5

    def test_mean(self):
        assert mean([1, 2, 3]) == 2.0

    def test_empty_rejected(self):
        for fn in (median, mean):
            with pytest.raises(SignalError):
                fn([])

    def test_quantile_matches_numpy_lower_style(self):
        data = [5, 1, 9, 3, 7]
        assert quantile(data, 0.5) == 5.0

    def test_fraction(self):
        assert fraction([1, 2, 3, 4], lambda x: x % 2 == 0) == 0.5

    def test_fraction_multiple_of(self):
        values = [0.5, 1.0, 1.25, 2.0]
        assert fraction_multiple_of(values, 0.5) == 0.75

    def test_fraction_multiple_rejects_bad_step(self):
        with pytest.raises(SignalError):
            fraction_multiple_of([1.0], 0.0)


class TestRollingMedian:
    def test_window_eviction(self):
        tracker = RollingMedian(3)
        for value in (1, 100, 2, 3):
            tracker.push(value)
        # Window now holds 100, 2, 3.
        assert tracker.median == 3

    def test_empty_median_none(self):
        assert RollingMedian(5).median is None

    def test_rejects_bad_window(self):
        with pytest.raises(SignalError):
            RollingMedian(0)

    def test_rolling_median_is_trailing(self):
        values = [10, 10, 10, 0, 0]
        medians = rolling_median(values, window=3)
        assert medians[0] is None
        # Index 3's baseline is values 0..2, unaffected by the drop at 3.
        assert medians[3] == 10

    @given(st.lists(st.integers(min_value=-1000, max_value=1000),
                    min_size=1, max_size=120),
           st.integers(min_value=1, max_value=25))
    def test_matches_naive_computation(self, values, window):
        medians = rolling_median(values, window)
        for i in range(len(values)):
            window_values = values[max(0, i - window):i]
            if not window_values:
                assert medians[i] is None
            else:
                assert medians[i] == float(np.median(window_values))


class TestBinomial:
    def test_pmf_sums_to_one(self):
        total = sum(binomial_pmf(k, 20, 0.3) for k in range(21))
        assert abs(total - 1.0) < 1e-12

    def test_pmf_edge_probabilities(self):
        assert binomial_pmf(0, 10, 0.0) == 1.0
        assert binomial_pmf(10, 10, 1.0) == 1.0
        assert binomial_pmf(3, 10, 0.0) == 0.0

    def test_rejects_bad_arguments(self):
        with pytest.raises(SignalError):
            binomial_pmf(-1, 10, 0.5)
        with pytest.raises(SignalError):
            binomial_pmf(11, 10, 0.5)
        with pytest.raises(SignalError):
            binomial_test_two_tailed(1, 10, 1.5)

    @given(st.integers(min_value=0, max_value=60),
           st.integers(min_value=1, max_value=60),
           st.floats(min_value=0.01, max_value=0.99))
    def test_matches_scipy(self, k, n, p):
        if k > n:
            k = n
        ours = binomial_test_two_tailed(k, n, p)
        theirs = scipy_stats.binomtest(k, n, p).pvalue
        assert ours == pytest.approx(theirs, rel=1e-6, abs=1e-12)

    def test_paper_style_friday_deficit(self):
        # A strong deficit: 2 of 182 events on Fridays vs uniform 1/7.
        p = binomial_test_two_tailed(2, 182, 1 / 7)
        assert p < 0.00065


class TestContingency:
    def test_rates_basic(self):
        contingency = DayLevelContingency(["A", "B"], range(10))
        condition = {("A", 1), ("A", 2)}
        outcome = {("A", 1), ("B", 5)}
        rates = contingency.rates(condition, outcome)
        assert rates.condition_cells == 2
        assert rates.other_cells == 18
        assert rates.outcomes_on_condition == 1
        assert rates.outcomes_on_other == 1
        assert rates.rate_given_condition == 0.5
        assert rates.rate_given_not_condition == pytest.approx(1 / 18)

    def test_day_subset_restricts_universe(self):
        contingency = DayLevelContingency(["A"], range(10))
        condition = {("A", 1), ("A", 8)}
        outcome = {("A", 8)}
        rates = contingency.rates(condition, outcome,
                                  day_subset=frozenset(range(5)))
        assert rates.condition_cells == 1     # only day 1 kept
        assert rates.outcomes_on_condition == 0
        assert rates.outcomes_on_other == 0

    def test_risk_ratio_infinite_when_baseline_zero(self):
        contingency = DayLevelContingency(["A"], range(4))
        rates = contingency.rates({("A", 0)}, {("A", 0)})
        assert rates.risk_ratio == float("inf")

    def test_unknown_cells_ignored(self):
        contingency = DayLevelContingency(["A"], range(4))
        rates = contingency.rates({("Z", 0)}, {("A", 99)})
        assert rates.condition_cells == 0
        assert rates.outcomes_on_other == 0

    def test_empty_universe_rejected(self):
        with pytest.raises(SignalError):
            DayLevelContingency([], range(3))
