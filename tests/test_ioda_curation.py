"""Tests for the curation pipeline (§3.1.2 decision procedure)."""

import numpy as np
import pytest

from repro.ioda.curation import CurationConfig, CurationPipeline
from repro.ioda.platform import IODAPlatform
from repro.ioda.records import ConfirmationStatus
from repro.signals.entities import EntityScope
from repro.signals.kinds import SignalKind
from repro.timeutils.timestamps import DAY, HOUR, TimeRange
from repro.world.disruptions import Cause
from repro.world.scenario import STUDY_PERIOD


@pytest.fixture(scope="module")
def pipeline(platform):
    return CurationPipeline(platform)


def window_for(pipeline, event):
    return TimeRange(event.span.start - pipeline.config.window_lead,
                     event.span.end + pipeline.config.window_tail)


class TestInvestigation:
    def test_total_shutdown_recorded_precisely(self, pipeline, scenario):
        event = next(e for e in scenario.shutdowns
                     if e.country_iso2 == "SY"
                     and STUDY_PERIOD.contains(e.span.start))
        records = pipeline.investigate(
            "SY", window_for(pipeline, event), STUDY_PERIOD)
        assert len(records) == 1
        record = records[0]
        # Start exactly on the ground-truth bin; end within one AP round.
        assert record.span.start == event.span.start
        assert abs(record.span.end - event.span.end) <= 600
        assert record.scope is EntityScope.COUNTRY
        assert record.visible_in_all_signals

    def test_exam_cause_attributed(self, pipeline, scenario):
        event = next(e for e in scenario.shutdowns
                     if e.cause is Cause.EXAM
                     and STUDY_PERIOD.contains(e.span.start))
        records = pipeline.investigate(
            event.country_iso2, window_for(pipeline, event), STUDY_PERIOD)
        causes = {r.cause for r in records}
        assert "Exam-related" in causes

    def test_quiet_window_produces_nothing(self, pipeline, scenario):
        quiet = TimeRange(STUDY_PERIOD.start, STUDY_PERIOD.start + 5 * DAY)
        # Japan is a STABLE archetype; verify no events in this window.
        assert not scenario.disruptions_in(quiet, country_iso2="JP")
        assert pipeline.investigate("JP", quiet, STUDY_PERIOD) == []

    def test_events_outside_period_not_recorded(self, pipeline, scenario):
        event = next(e for e in scenario.shutdowns
                     if e.span.start < STUDY_PERIOD.start - 30 * DAY
                     and e.scope is EntityScope.COUNTRY)
        records = pipeline.investigate(
            event.country_iso2, window_for(pipeline, event), STUDY_PERIOD)
        assert all(STUDY_PERIOD.contains(r.span.start) for r in records)

    def test_mobile_only_event_mostly_invisible(self, pipeline, scenario):
        events = [e for e in scenario.shutdowns
                  if e.mobile_only and e.scope is EntityScope.COUNTRY
                  and STUDY_PERIOD.contains(e.span.start)][:5]
        assert events
        recorded = 0
        for event in events:
            records = pipeline.investigate(
                event.country_iso2, window_for(pipeline, event),
                STUDY_PERIOD)
            recorded += sum(
                1 for r in records
                if r.span.overlaps(event.span)
                and r.scope is EntityScope.COUNTRY)
        assert recorded < len(events)

    def test_artifact_rejected_by_control_group(self, pipeline, scenario):
        artifact = scenario.artifacts[0]
        window = artifact.span.expand(
            before=pipeline.config.window_lead,
            after=pipeline.config.window_tail)
        # Pick a country with no real disruption overlapping the artifact.
        for iso2 in ("JP", "DE", "AU", "CA"):
            if not any(d.span.overlaps(window)
                       for d in scenario.disruptions_in(
                           STUDY_PERIOD, country_iso2=iso2)):
                break
        records = pipeline.investigate(iso2, window, STUDY_PERIOD)
        overlapping = [r for r in records
                       if r.span.overlaps(artifact.span)]
        assert not overlapping

    def test_region_scope_descent(self, pipeline, scenario):
        event = next(e for e in scenario.shutdowns
                     if e.scope is EntityScope.REGION
                     and not e.mobile_only
                     and STUDY_PERIOD.contains(e.span.start))
        records = pipeline.investigate(
            event.country_iso2, window_for(pipeline, event), STUDY_PERIOD)
        region_records = [r for r in records
                          if r.scope is EntityScope.REGION]
        assert region_records
        assert any(event.region_name in r.region_names
                   for r in region_records)


class TestFullRun:
    def test_full_run_summary(self, pipeline_result, scenario):
        records = pipeline_result.curated_records
        country_scope = [r for r in records
                         if r.scope is EntityScope.COUNTRY]
        # Detection covers the large majority of country-level truth.
        truth = [d for d in scenario.country_level_disruptions(STUDY_PERIOD)
                 if not d.mobile_only]
        assert len(country_scope) > 0.75 * len(truth)
        # Everything recorded lies in the study period.
        assert all(STUDY_PERIOD.contains(r.span.start) for r in records)
        # Record ids unique.
        ids = [r.record_id for r in records]
        assert len(ids) == len(set(ids))

    def test_recorded_spans_match_some_truth(self, pipeline_result,
                                             scenario):
        """Curated records should not hallucinate: nearly all overlap a
        ground-truth disruption."""
        records = [r for r in pipeline_result.curated_records
                   if r.scope is EntityScope.COUNTRY]
        spurious = 0
        for record in records:
            overlapping = [
                d for d in scenario.all_disruptions()
                if d.country_iso2 == record.country_iso2
                and d.span.overlaps(record.span.expand(
                    before=HOUR, after=HOUR))]
            if not overlapping:
                spurious += 1
        assert spurious / len(records) < 0.05

    def test_causes_attributed_with_expected_coverage(self,
                                                      pipeline_result):
        records = [r for r in pipeline_result.curated_records
                   if r.scope is EntityScope.COUNTRY]
        with_cause = sum(1 for r in records if r.cause is not None)
        assert 0.4 < with_cause / len(records) < 0.95

    def test_confirmation_statuses_consistent(self, pipeline_result):
        for record in pipeline_result.curated_records:
            if record.cause is not None:
                assert record.confirmation is ConfirmationStatus.CONFIRMED

    def test_config_exposed(self, pipeline):
        assert isinstance(pipeline.config, CurationConfig)
        assert pipeline.config.human_depth[SignalKind.TELESCOPE] == 0.5
