"""Tests for the telescope substrate."""

import numpy as np
import pytest

from repro.errors import SignalError
from repro.net.ipv4 import IPv4Address, parse_prefix
from repro.rng import substream
from repro.telescope.counter import (
    unique_source_series,
    unique_sources_from_packets,
)
from repro.telescope.filters import (
    BOGON_PREFIXES,
    default_filters,
    not_bogon,
    ttl_plausible,
)
from repro.telescope.packets import (
    IBRGenerator,
    PacketKind,
    TelescopePacket,
    diurnal_factor,
    diurnal_factors,
)
from repro.timeutils.timestamps import DAY, HOUR, TimeRange

PREFIXES = [parse_prefix("20.0.0.0/20"), parse_prefix("20.0.16.0/22")]


def packet(source="20.0.0.5", ttl=60, kind=PacketKind.SCAN, time=0):
    return TelescopePacket(time=time, source=IPv4Address.parse(source),
                           ttl=ttl, kind=kind)


class TestDiurnal:
    def test_peaks_afternoon_troughs_predawn(self):
        offset = 0
        afternoon = diurnal_factor(15 * HOUR, offset)
        predawn = diurnal_factor(3 * HOUR, offset)
        assert afternoon > 1.2
        assert predawn < 0.8

    def test_offset_shifts_peak(self):
        # 09:00 UTC is 15:30 in Myanmar (+6:30): near the local peak there.
        ts = 9 * HOUR
        assert diurnal_factor(ts, 390 * 60) > diurnal_factor(ts, 0)

    def test_period_is_one_day(self):
        assert diurnal_factor(7 * HOUR, 0) == \
            pytest.approx(diurnal_factor(7 * HOUR + DAY, 0))

    def test_vectorized_matches_scalar_exactly(self):
        # The telescope signal feeds lam into rng.poisson, so even a
        # one-ULP drift between the vectorized and scalar paths would
        # change output bytes: equality must be exact, not approximate.
        start = 1_600_000_000 - (1_600_000_000 % 300)
        bin_starts = start + 300 * np.arange(2 * DAY // 300)
        for offset in (0, 3 * HOUR, -5 * HOUR, 345 * 60, 20700):
            vectorized = diurnal_factors(bin_starts, offset)
            scalar = np.array([diurnal_factor(int(ts), offset)
                               for ts in bin_starts])
            assert np.array_equal(vectorized, scalar)

    def test_vectorized_respects_amplitude(self):
        bin_starts = np.arange(0, DAY, 300)
        flat = diurnal_factors(bin_starts, 0, amplitude=0.0)
        assert np.array_equal(flat, np.ones_like(flat))
        scalar = np.array([diurnal_factor(int(ts), 0, amplitude=0.1)
                           for ts in bin_starts])
        assert np.array_equal(
            diurnal_factors(bin_starts, 0, amplitude=0.1), scalar)


class TestFilters:
    def test_ttl_plausible(self):
        assert ttl_plausible(packet(ttl=60))
        assert not ttl_plausible(packet(ttl=255))
        assert not ttl_plausible(packet(ttl=1))

    def test_bogon_rejected(self):
        assert not not_bogon(packet(source="10.1.2.3"))
        assert not not_bogon(packet(source="192.168.1.1"))
        assert not_bogon(packet(source="20.0.0.5"))

    def test_pipeline_partition(self):
        packets = [packet(), packet(ttl=255), packet(source="10.0.0.1")]
        accepted, rejected = default_filters().partition(packets)
        assert len(accepted) == 1
        assert len(rejected) == 2

    def test_bogon_table_contains_rfc1918(self):
        rendered = {str(p) for p in BOGON_PREFIXES}
        assert "10.0.0.0/8" in rendered
        assert "192.168.0.0/16" in rendered


class TestIBRGenerator:
    def _generator(self, intensity=60.0):
        return IBRGenerator(PREFIXES, intensity_per_bin=intensity,
                            utc_offset_seconds=0,
                            rng=substream(5, "ibr"))

    def test_sources_come_from_prefixes_when_up(self):
        generator = self._generator()
        window = TimeRange(0, HOUR)
        up = np.ones(12)
        packets = list(generator.packets(window, up))
        genuine = [p for p in packets if p.kind is not PacketKind.SPOOFED]
        assert genuine
        for p in genuine:
            assert any(prefix.contains(p.source) for prefix in PREFIXES)

    def test_blackout_stops_genuine_traffic(self):
        generator = self._generator()
        window = TimeRange(0, HOUR)
        packets = list(generator.packets(window, np.zeros(12)))
        assert all(p.kind is PacketKind.SPOOFED for p in packets)

    def test_spoofed_packets_filtered(self):
        generator = self._generator()
        window = TimeRange(0, 2 * HOUR)
        packets = list(generator.packets(window, np.ones(24)))
        accepted, _ = default_filters().partition(packets)
        spoofed_surviving = [p for p in accepted if p.likely_spoofed]
        # The pathological-TTL heuristic removes all our spoofed traffic.
        assert not spoofed_surviving


class TestCounting:
    def test_packet_counting_matches_manual(self):
        window = TimeRange(0, 600)
        packets = [
            packet(source="20.0.0.1", time=10),
            packet(source="20.0.0.1", time=20),   # duplicate source
            packet(source="20.0.0.2", time=30),
            packet(source="20.0.0.3", time=400),  # second bin
        ]
        series = unique_sources_from_packets(packets, window)
        assert list(series.values) == [2, 1]

    def test_packets_outside_window_ignored(self):
        window = TimeRange(0, 300)
        series = unique_sources_from_packets([packet(time=5000)], window)
        assert series.values.sum() == 0

    def test_statistical_series_tracks_up_fraction(self):
        window = TimeRange(0, 2 * DAY)
        n_bins = 2 * DAY // 300
        up = np.ones(n_bins)
        up[n_bins // 2:] = 0.0
        series = unique_source_series(window, 80.0, up, 0,
                                      substream(6, "tel"))
        up_mean = series.values[:n_bins // 2].mean()
        down_mean = series.values[n_bins // 2:].mean()
        assert down_mean < 0.1 * up_mean

    def test_statistical_and_packet_paths_agree_in_mean(self):
        window = TimeRange(0, 6 * HOUR)
        n_bins = 6 * HOUR // 300
        intensity = 50.0
        generator = IBRGenerator(PREFIXES, intensity, 0,
                                 substream(7, "a"), spoofed_fraction=0.0)
        packets = list(generator.packets(window, np.ones(n_bins)))
        packet_series = unique_sources_from_packets(packets, window)
        stat_series = unique_source_series(
            window, intensity, np.ones(n_bins), 0, substream(7, "b"),
            residual_noise=0.0)
        # Means within 20% (unique-counting dedups a few collisions).
        assert stat_series.values.mean() == pytest.approx(
            packet_series.values.mean(), rel=0.2)

    def test_validation(self):
        with pytest.raises(SignalError):
            unique_source_series(TimeRange(0, HOUR), 10.0, np.ones(3), 0,
                                 substream(1, "x"))
        with pytest.raises(SignalError):
            unique_source_series(TimeRange(0, HOUR), 0.0, np.ones(12), 0,
                                 substream(1, "x"))
