"""Property-based tests for the time-series container."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.signals.series import TimeSeries
from repro.timeutils.timestamps import FIVE_MINUTES, TimeRange


series_strategy = st.builds(
    lambda start_bins, values: TimeSeries(
        start_bins * FIVE_MINUTES, FIVE_MINUTES, values),
    start_bins=st.integers(min_value=0, max_value=1000),
    values=st.lists(
        st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
        min_size=1, max_size=200))


class TestTimeSeriesProperties:
    @settings(max_examples=60, deadline=None)
    @given(series_strategy)
    def test_iteration_roundtrips_values(self, series):
        pairs = list(series)
        assert len(pairs) == len(series)
        for index, (ts, value) in enumerate(pairs):
            assert ts == series.timestamp_of(index)
            assert series.at(ts) == value

    @settings(max_examples=60, deadline=None)
    @given(series_strategy, st.data())
    def test_slice_preserves_values(self, series, data):
        lo = data.draw(st.integers(min_value=series.start,
                                   max_value=series.end - 1))
        hi = data.draw(st.integers(min_value=lo + 1,
                                   max_value=series.end))
        sliced = series.slice(TimeRange(lo, hi))
        for ts, value in sliced:
            assert series.at(ts) == value
        # The slice covers every bin overlapping [lo, hi).
        assert sliced.start <= lo
        assert sliced.end >= hi

    @settings(max_examples=60, deadline=None)
    @given(series_strategy)
    def test_scale_linear(self, series):
        doubled = series.scale(2.0)
        assert np.allclose(doubled.values, 2.0 * series.values)
        summed = series + series
        assert np.allclose(summed.values, doubled.values)

    @settings(max_examples=60, deadline=None)
    @given(series_strategy)
    def test_span_consistent(self, series):
        span = series.span
        assert span.duration == len(series) * series.width
        assert span.contains(series.start)
        assert not span.contains(series.end)
