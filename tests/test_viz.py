"""Tests for the terminal visualization helpers."""

import numpy as np
import pytest

from repro.errors import SignalError
from repro.signals.series import TimeSeries
from repro.stats.ecdf import ECDF
from repro.viz import bar_row, cdf_plot, sparkline


class TestSparkline:
    def test_monotone_values_monotone_glyphs(self):
        line = sparkline([0.0, 5.0, 10.0], width=3)
        assert len(line) == 3
        glyphs = " .:-=+*#%@"
        indices = [glyphs.index(c) for c in line]
        assert indices == sorted(indices)
        assert line[-1] == "@"

    def test_downsampling(self):
        line = sparkline(list(range(128)), width=16)
        assert len(line) == 16

    def test_accepts_time_series(self):
        series = TimeSeries(0, 300, np.array([1.0, 2.0, 3.0]))
        assert len(sparkline(series, width=3)) == 3

    def test_all_zero(self):
        assert sparkline([0.0, 0.0], width=2) == "  "

    def test_validation(self):
        with pytest.raises(SignalError):
            sparkline([1.0], width=0)
        with pytest.raises(SignalError):
            sparkline([], width=4)


class TestCdfPlot:
    def test_shape(self):
        cdf = ECDF.from_samples(range(100))
        lines = cdf_plot(cdf, width=40, height=10, label="test")
        assert len(lines) == 11  # header + height rows
        assert lines[0].startswith("test")
        body = lines[1:]
        assert all(line.startswith("|") and line.endswith("|")
                   for line in body)

    def test_mass_reaches_top_row(self):
        cdf = ECDF.from_samples(range(100))
        lines = cdf_plot(cdf, width=40, height=10)
        assert "*" in lines[1]   # y = 1 row is populated at the far right

    def test_validation(self):
        cdf = ECDF.from_samples([1, 2, 3])
        with pytest.raises(SignalError):
            cdf_plot(cdf, width=1)


class TestBarRow:
    def test_bars_scale_to_max(self):
        lines = bar_row(["a", "bb"], [1.0, 2.0], width=10)
        assert len(lines) == 2
        assert lines[1].count("#") == 10
        assert lines[0].count("#") == 5

    def test_alignment(self):
        lines = bar_row(["x", "long"], [1.0, 1.0])
        assert lines[0].index("#") == lines[1].index("#")

    def test_validation(self):
        with pytest.raises(SignalError):
            bar_row(["a"], [1.0, 2.0])
        with pytest.raises(SignalError):
            bar_row([], [])
