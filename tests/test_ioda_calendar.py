"""Tests for the observation calendar and its curation integration."""

import pytest

from repro.ioda.calendar import (
    GapKind,
    IODA_CALENDAR,
    ObservationCalendar,
    ObservationGap,
)
from repro.ioda.curation import CurationPipeline
from repro.signals.entities import EntityScope
from repro.timeutils.timestamps import DAY, TimeRange, utc
from repro.world.scenario import STUDY_PERIOD


class TestCalendar:
    def test_default_calendar_matches_paper(self):
        assert len(IODA_CALENDAR.gaps) == 2
        degraded, offline = IODA_CALENDAR.gaps
        assert degraded.kind is GapKind.DEGRADED
        assert degraded.span.start == utc(2021, 8, 1)
        assert offline.kind is GapKind.OFFLINE
        assert offline.span.end == utc(2022, 2, 7)

    def test_study_period_avoids_all_gaps(self):
        """The paper chose the study end to dodge the gaps entirely."""
        for gap in IODA_CALENDAR.gaps:
            assert not gap.span.overlaps(STUDY_PERIOD)

    def test_gap_lookup(self):
        assert IODA_CALENDAR.gap_at(utc(2021, 9, 15)) is not None
        assert IODA_CALENDAR.gap_at(utc(2021, 7, 15)) is None

    def test_offline_never_observes(self):
        ts = utc(2021, 12, 15)
        assert not IODA_CALENDAR.observes(ts, seed=1)
        assert not IODA_CALENDAR.observes(ts, seed=2)

    def test_degraded_observes_a_fraction(self):
        hits = sum(
            1 for day in range(90)
            if IODA_CALENDAR.observes(utc(2021, 8, 2) + day * DAY, seed=1))
        assert 10 < hits < 50  # ~30% of 90

    def test_observes_deterministic(self):
        ts = utc(2021, 9, 1, 12)
        assert IODA_CALENDAR.observes(ts, seed=5) == \
            IODA_CALENDAR.observes(ts, seed=5)

    def test_clean_subperiods(self):
        period = TimeRange(utc(2021, 6, 1), utc(2022, 3, 1))
        clean = IODA_CALENDAR.clean_subperiods(period)
        assert clean[0] == TimeRange(utc(2021, 6, 1), utc(2021, 8, 1))
        assert clean[-1] == TimeRange(utc(2022, 2, 7), utc(2022, 3, 1))

    def test_empty_calendar_observes_everything(self):
        calendar = ObservationCalendar()
        assert calendar.observes(utc(2021, 12, 15), seed=1)
        assert calendar.clean_subperiods(STUDY_PERIOD) == [STUDY_PERIOD]


class TestCurationWithCalendar:
    def test_offline_gap_suppresses_records(self, platform, scenario):
        """Extending past the study period without the calendar records
        events that the calendar correctly drops."""
        extended = TimeRange(utc(2021, 6, 1), utc(2022, 1, 1))
        # An event inside the offline gap.
        event = next(
            (d for d in scenario.all_disruptions()
             if d.scope is EntityScope.COUNTRY
             and utc(2021, 11, 5) <= d.span.start < utc(2021, 12, 25)
             and d.severity >= 0.9 and not d.mobile_only), None)
        assert event is not None, "need an event inside the offline gap"
        window = TimeRange(event.span.start - int(3.5 * DAY),
                           event.span.end + DAY)
        naive = CurationPipeline(platform)
        aware = CurationPipeline(platform, calendar=IODA_CALENDAR)
        naive_records = naive.investigate(
            event.country_iso2, window, extended)
        aware_records = aware.investigate(
            event.country_iso2, window, extended)
        assert any(r.span.overlaps(event.span) for r in naive_records)
        assert not any(r.span.overlaps(event.span)
                       for r in aware_records)

    def test_calendar_has_no_effect_inside_study_period(self, platform,
                                                        scenario):
        event = next(d for d in scenario.shutdowns
                     if d.country_iso2 == "SY"
                     and STUDY_PERIOD.contains(d.span.start))
        window = TimeRange(event.span.start - int(3.5 * DAY),
                           event.span.end + DAY)
        naive = CurationPipeline(platform).investigate(
            "SY", window, STUDY_PERIOD)
        aware = CurationPipeline(
            platform, calendar=IODA_CALENDAR).investigate(
                "SY", window, STUDY_PERIOD)
        assert [r.span for r in naive] == [r.span for r in aware]
