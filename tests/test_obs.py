"""Unit tests for the repro.obs observability subsystem."""

import json

import pytest

from repro.obs import (
    Histogram,
    MetricsRegistry,
    Observability,
    RunJournal,
    SpanRecord,
    Tracer,
    activate,
    chrome_trace,
    current,
    read_journal,
    series_key,
    summarize_events,
    write_chrome_trace,
)
from repro.obs.runtime import NULL_OBS


# -- tracing --------------------------------------------------------------------


class TestTracer:
    def test_spans_nest_through_the_thread_stack(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        by_name = {s.name: s for s in tracer.spans()}
        assert by_name["outer"].parent_id is None
        assert by_name["inner"].parent_id == by_name["outer"].span_id

    def test_close_order_is_inner_first(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        assert [s.name for s in tracer.spans()] == ["inner", "outer"]

    def test_explicit_parent_overrides_the_stack(self):
        tracer = Tracer()
        with tracer.span("root") as root:
            pass
        with tracer.span("detached", parent=root.span_id):
            pass
        detached = next(s for s in tracer.spans() if s.name == "detached")
        assert detached.parent_id == root.span_id

    def test_attrs_and_set_attrs(self):
        tracer = Tracer()
        with tracer.span("work", country="SY") as span:
            span.set_attrs(n_records=3)
        record = tracer.spans()[0]
        assert record.attrs == {"country": "SY", "n_records": 3}

    def test_exception_annotates_and_still_records(self):
        tracer = Tracer()
        with pytest.raises(ValueError):
            with tracer.span("doomed"):
                raise ValueError("boom")
        record = tracer.spans()[0]
        assert record.attrs["error"] == "ValueError"

    def test_durations_are_monotonic_and_nonnegative(self):
        tracer = Tracer()
        with tracer.span("timed"):
            pass
        record = tracer.spans()[0]
        assert record.duration >= 0.0
        assert record.start > 0.0

    def test_adopt_remaps_ids_and_reparents_roots(self):
        child = Tracer()
        with child.span("shard"):
            with child.span("country"):
                pass
        parent = Tracer()
        with parent.span("stage") as stage:
            pass
        parent.adopt(child.spans(), stage.span_id)
        by_name = {s.name: s for s in parent.spans()}
        assert by_name["shard"].parent_id == by_name["stage"].span_id
        assert by_name["country"].parent_id == by_name["shard"].span_id
        ids = [s.span_id for s in parent.spans()]
        assert len(ids) == len(set(ids))

    def test_span_record_event_roundtrip(self):
        record = SpanRecord(span_id=3, parent_id=1, name="x", start=10.5,
                            duration=0.25, worker="1/main",
                            attrs={"k": "v"})
        assert SpanRecord.from_event(record.as_event()) == record


# -- metrics --------------------------------------------------------------------


class TestMetrics:
    def test_series_key_sorts_labels(self):
        assert series_key("c", {"b": 1, "a": 2}) == "c{a=2,b=1}"
        assert series_key("c", {}) == "c"

    def test_counter_and_labels(self):
        registry = MetricsRegistry()
        registry.counter("records", country="SY").inc(2)
        registry.counter("records", country="SY").inc()
        registry.counter("records", country="IN").inc(5)
        snap = registry.snapshot()
        assert snap["counters"]["records{country=SY}"] == 3
        assert snap["counters"]["records{country=IN}"] == 5

    def test_gauge_last_write_wins(self):
        registry = MetricsRegistry()
        registry.gauge("workers").set(2)
        registry.gauge("workers").set(8)
        assert registry.snapshot()["gauges"]["workers"] == 8.0

    def test_histogram_percentiles(self):
        histogram = Histogram(buckets=(1.0, 2.0, 4.0, 8.0))
        for value in [0.5] * 50 + [3.0] * 50:
            histogram.observe(value)
        assert histogram.count == 100
        assert histogram.percentile(25) <= 1.0
        assert 2.0 <= histogram.percentile(90) <= 4.0
        summary = histogram.summary()
        assert summary["count"] == 100
        assert summary["min"] == 0.5
        assert summary["max"] == 3.0

    def test_histogram_overflow_bucket_reports_maximum(self):
        histogram = Histogram(buckets=(1.0,))
        histogram.observe(50.0)
        assert histogram.percentile(99) == 50.0

    def test_empty_histogram_summary(self):
        assert Histogram().summary()["count"] == 0

    def test_empty_histogram_has_no_percentiles(self):
        histogram = Histogram()
        assert histogram.percentile(50) is None
        summary = histogram.summary()
        assert summary["count"] == 0
        assert summary["sum"] == 0.0
        assert summary["min"] is None and summary["max"] is None
        assert summary["p50"] is None and summary["p90"] is None \
            and summary["p99"] is None

    def test_single_sample_percentiles_clamp_to_the_sample(self):
        histogram = Histogram(buckets=(1.0, 2.0))
        histogram.observe(1.5)
        for q in (1, 50, 99):
            assert histogram.percentile(q) == 1.5
        summary = histogram.summary()
        assert summary["min"] == summary["max"] == 1.5
        assert summary["p50"] == 1.5

    def test_percentiles_never_escape_the_observed_range(self):
        histogram = Histogram(buckets=(10.0,))
        histogram.observe(2.0)
        histogram.observe(3.0)
        assert 2.0 <= histogram.percentile(99) <= 3.0

    def test_merge_adds_counters_and_buckets(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("n").inc(2)
        b.counter("n").inc(3)
        a.histogram("lat", buckets=(1.0, 2.0)).observe(0.5)
        b.histogram("lat", buckets=(1.0, 2.0)).observe(1.5)
        a.merge(b.snapshot())
        snap = a.snapshot()
        assert snap["counters"]["n"] == 5
        assert snap["histograms"]["lat"]["count"] == 2
        assert snap["histograms"]["lat"]["max"] == 1.5

    def test_merge_rejects_mismatched_buckets(self):
        a = MetricsRegistry()
        a.histogram("lat", buckets=(1.0,)).observe(0.5)
        bad = {"histograms": {"lat": {"buckets": [2.0], "count": 1,
                                      "sum": 0.5, "min": 0.5, "max": 0.5,
                                      "bucket_counts": [1, 0]}}}
        with pytest.raises(ValueError):
            a.merge(bad)


# -- the ambient session --------------------------------------------------------


class TestRuntime:
    def test_default_session_is_the_null_session(self):
        assert current() is NULL_OBS
        assert not current().enabled

    def test_activate_installs_and_restores(self):
        obs = Observability()
        with activate(obs):
            assert current() is obs
            with obs.span("visible"):
                pass
        assert current() is NULL_OBS
        assert [s.name for s in obs.tracer.spans()] == ["visible"]

    def test_null_session_records_nothing(self):
        with NULL_OBS.span("ignored", country="SY") as span:
            span.set_attrs(more="attrs")
        NULL_OBS.annotate(ignored=True)
        NULL_OBS.metrics.counter("ignored").inc()
        assert NULL_OBS.tracer.spans() == []
        assert NULL_OBS.metrics_snapshot() == {
            "counters": {}, "gauges": {}, "histograms": {}}

    def test_annotate_hits_innermost_open_span(self):
        obs = Observability()
        with activate(obs):
            with obs.span("outer"):
                with obs.span("inner"):
                    obs.annotate(tag=1)
        by_name = {s.name: s for s in obs.tracer.spans()}
        assert by_name["inner"].attrs == {"tag": 1}
        assert by_name["outer"].attrs == {}


# -- journal --------------------------------------------------------------------


class TestJournal:
    def test_session_streams_spans_and_seals_with_metrics(self, tmp_path):
        path = tmp_path / "run.jsonl"
        obs = Observability(journal=RunJournal(path))
        with activate(obs):
            with obs.span("stage:curate"):
                obs.metrics.counter("records").inc(7)
        obs.finish()
        obs.finish()  # idempotent
        events = read_journal(path)
        kinds = [e["type"] for e in events]
        assert kinds[0] == "run_start"
        assert kinds[-1] == "run_end"
        assert "span" in kinds and "metrics" in kinds
        metrics = next(e for e in events if e["type"] == "metrics")
        assert metrics["counters"]["records"] == 7

    def test_journal_accepts_a_path_directly(self, tmp_path):
        path = tmp_path / "run.jsonl"
        obs = Observability(journal=path)
        obs.finish()
        assert read_journal(path)

    def test_torn_final_line_is_tolerated(self, tmp_path):
        path = tmp_path / "run.jsonl"
        obs = Observability(journal=RunJournal(path))
        with activate(obs):
            with obs.span("work"):
                pass
        obs.finish()
        with path.open("a", encoding="utf-8") as handle:
            handle.write('{"type": "span", "trunca')
        events = read_journal(path)
        assert [e["type"] for e in events].count("span") == 1

    def test_line_torn_inside_a_multibyte_char_is_tolerated(self, tmp_path):
        path = tmp_path / "run.jsonl"
        obs = Observability(journal=RunJournal(path))
        with activate(obs):
            with obs.span("work"):
                pass
        obs.finish()
        torn = '{"type": "span", "name": "Côte d\'Ivoire"'.encode("utf-8")
        # Cut one byte into the two-byte "ô" sequence: the tail is not
        # merely invalid JSON but invalid UTF-8.
        with path.open("ab") as handle:
            handle.write(torn[:torn.index(b"\xc3") + 1])
        events = read_journal(path)
        assert [e["type"] for e in events].count("span") == 1
        assert events[-1]["type"] == "run_end"

    def test_summarize_replayed_journal(self, tmp_path):
        path = tmp_path / "run.jsonl"
        obs = Observability(journal=RunJournal(path))
        with activate(obs):
            with obs.span("stage:curate"):
                with obs.span("exec.shard", shard=0):
                    pass
            obs.metrics.counter("rng.substreams").inc(42)
            obs.metrics.histogram("shard.seconds").observe(0.5)
        obs.finish()
        summary = summarize_events(read_journal(path))
        assert summary.n_spans == 2
        assert summary.counters["rng.substreams"] == 42
        text = "\n".join(summary.rows())
        assert "slowest spans" in text
        assert "stage:curate" in text
        assert "rng.substreams" in text
        assert "histograms" in text


# -- chrome export --------------------------------------------------------------


class TestChromeExport:
    def _spans(self):
        tracer = Tracer()
        with tracer.span("stage:curate"):
            with tracer.span("exec.shard", shard=1):
                pass
        return tracer.spans()

    def test_trace_event_structure(self):
        document = chrome_trace(self._spans())
        assert set(document) == {"traceEvents", "displayTimeUnit"}
        complete = [e for e in document["traceEvents"] if e["ph"] == "X"]
        assert {e["name"] for e in complete} \
            == {"stage:curate", "exec.shard"}
        for event in complete:
            assert event["ts"] >= 0 and event["dur"] >= 0
            assert isinstance(event["pid"], int)
            assert isinstance(event["tid"], int)

    def test_span_tree_survives_in_args(self):
        document = chrome_trace(self._spans())
        by_name = {e["name"]: e for e in document["traceEvents"]
                   if e["ph"] == "X"}
        shard = by_name["exec.shard"]
        assert shard["args"]["parent_id"] \
            == by_name["stage:curate"]["args"]["span_id"]
        assert shard["args"]["shard"] == 1

    def test_write_is_valid_json(self, tmp_path):
        path = write_chrome_trace(self._spans(), tmp_path / "trace.json")
        document = json.loads(path.read_text(encoding="utf-8"))
        assert document["traceEvents"]

    def test_zero_spans_export_an_empty_valid_document(self, tmp_path):
        document = chrome_trace([])
        assert document == {"traceEvents": [], "displayTimeUnit": "ms"}
        path = write_chrome_trace([], tmp_path / "trace.json")
        assert json.loads(path.read_text(encoding="utf-8")) == document

    def test_adopted_process_worker_spans_keep_pid_tree_and_profile(self):
        parent = Tracer()
        with parent.span("stage:curate") as stage:
            pass
        worker_spans = [
            SpanRecord(span_id=1, parent_id=None, name="exec.shard",
                       start=10.0, duration=0.5,
                       worker="4242/MainThread",
                       attrs={"shard": 0, "profile": {"cpu_s": 0.1}}),
            SpanRecord(span_id=2, parent_id=1, name="country",
                       start=10.1, duration=0.2,
                       worker="4242/MainThread", attrs={}),
        ]
        parent.adopt(worker_spans, stage.span_id)
        document = chrome_trace(parent.spans())
        by_name = {e["name"]: e for e in document["traceEvents"]
                   if e["ph"] == "X"}
        # The worker's spans land on their own pid lane...
        assert by_name["exec.shard"]["pid"] != by_name["stage:curate"]["pid"]
        assert by_name["country"]["pid"] == by_name["exec.shard"]["pid"]
        # ...with the grafted tree intact after the id remap...
        assert by_name["exec.shard"]["args"]["parent_id"] \
            == by_name["stage:curate"]["args"]["span_id"]
        assert by_name["country"]["args"]["parent_id"] \
            == by_name["exec.shard"]["args"]["span_id"]
        # ...and profile readings riding through adoption in the attrs.
        assert by_name["exec.shard"]["args"]["profile"] == {"cpu_s": 0.1}
