"""Run the documentation examples embedded in utility modules."""

import doctest

import pytest

import repro.countries.names
import repro.net.ipv4
import repro.net.prefixtree
import repro.rng
import repro.stats.binomial
import repro.stats.ecdf
import repro.stats.mannwhitney
import repro.timeutils.timestamps
import repro.timeutils.timezones
import repro.viz

MODULES = [
    repro.countries.names,
    repro.net.ipv4,
    repro.net.prefixtree,
    repro.rng,
    repro.stats.binomial,
    repro.stats.ecdf,
    repro.stats.mannwhitney,
    repro.timeutils.timestamps,
    repro.timeutils.timezones,
    repro.viz,
]


@pytest.mark.parametrize(
    "module", MODULES, ids=lambda m: m.__name__)
def test_module_doctests(module):
    results = doctest.testmod(module)
    assert results.failed == 0, f"{results.failed} doctest failures"


def test_doctests_actually_present():
    """Guard against the suite silently testing nothing."""
    total = sum(doctest.testmod(module).attempted for module in MODULES)
    assert total >= 8
