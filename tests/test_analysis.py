"""Tests for the analysis layer — every table and figure computation."""

import numpy as np
import pytest

from repro.analysis.country_year import CountryYearGroup, \
    group_country_years
from repro.analysis.institutions import (
    institution_distributions,
    state_control_split,
    state_share_distributions,
)
from repro.analysis.kio_trends import kio_trends
from repro.analysis.match_timelines import best_series_example, \
    match_timeline
from repro.analysis.mobilization import mobilization_table
from repro.analysis.observability import observability_table
from repro.analysis.summary import summarize_merged
from repro.analysis.temporal import analyze_temporal
from repro.kio.schema import KIOCategory

YEARS = [2018, 2019, 2020, 2021]


@pytest.fixture(scope="module")
def merged(pipeline_result):
    return pipeline_result.merged


@pytest.fixture(scope="module")
def country_years(merged):
    return group_country_years(merged, YEARS)


class TestTable2:
    def test_counts_consistent(self, merged):
        table = summarize_merged(merged)
        assert table.kio_total == len(merged.kio_full_network)
        assert table.ioda_shutdown_total + table.outage_total == \
            len(merged.ioda_records)
        assert table.union_shutdown_total == \
            table.kio_total + table.ioda_shutdown_total \
            - table.kio_matched_to_ioda

    def test_paper_regime(self, merged):
        table = summarize_merged(merged)
        # Shapes: IODA shutdowns ~182, outages ~714, union ~219.
        assert 120 <= table.ioda_shutdown_total <= 350
        assert 450 <= table.outage_total <= 1000
        assert table.outage_total > 2 * table.union_shutdown_total
        assert table.n_outage_countries > 3 * table.n_shutdown_countries

    def test_top_countries_are_heavy_hitters(self, merged):
        table = summarize_merged(merged)
        top_iso = [iso2 for iso2, _ in table.top_ioda_shutdown_countries]
        # The synthetic exam/coup countries dominate, as in the paper.
        assert set(top_iso[:4]) & {"SY", "IQ", "DZ", "ET", "KG", "MM",
                                   "SD", "ML", "GN"}

    def test_rows_render(self, merged):
        rows = summarize_merged(merged).rows()
        assert len(rows) == 8
        assert all(isinstance(r, str) for r in rows)


class TestTable3:
    def test_partition_complete(self, merged, country_years):
        counts = country_years.counts()
        assert sum(counts.values()) == len(merged.registry) * len(YEARS)

    def test_ordering_matches_paper(self, country_years):
        counts = country_years.counts()
        assert counts[CountryYearGroup.SHUTDOWNS] < \
            counts[CountryYearGroup.OUTAGES] < \
            counts[CountryYearGroup.NEITHER]

    def test_shutdown_year_assignment(self, merged, country_years):
        event = merged.ioda_shutdowns()[0]
        import time
        year = time.gmtime(event.record.span.start).tm_year
        assert country_years.of(event.record.country_iso2, year) is \
            CountryYearGroup.SHUTDOWNS

    def test_same_country_can_change_groups(self, country_years):
        by_country = {}
        for (iso2, year), group in country_years.assignments.items():
            by_country.setdefault(iso2, set()).add(group)
        assert any(len(groups) > 1 for groups in by_country.values())


class TestInstitutions:
    @pytest.fixture(scope="class")
    def distributions(self, country_years, merged, pipeline_result):
        return institution_distributions(
            country_years, merged.registry, pipeline_result.vdem,
            pipeline_result.worldbank)

    def test_figure4_libdem_ordering(self, distributions):
        libdem = distributions["liberal_democracy"]
        assert libdem.median(CountryYearGroup.SHUTDOWNS) < \
            libdem.median(CountryYearGroup.OUTAGES) < \
            libdem.median(CountryYearGroup.NEITHER)

    def test_figure5_military_ordering(self, distributions):
        military = distributions["military_power"]
        assert military.median(CountryYearGroup.SHUTDOWNS) >= \
            military.median(CountryYearGroup.OUTAGES) >= \
            military.median(CountryYearGroup.NEITHER)
        # Over half of Neither country-years score 0 (paper Fig 5).
        neither = military.cdfs[CountryYearGroup.NEITHER]
        assert neither(0.0) > 0.4

    def test_figure6_media_ordering(self, distributions):
        for field in ("media_bias", "freedom_discussion_men"):
            dist = distributions[field]
            assert dist.median(CountryYearGroup.SHUTDOWNS) < \
                dist.median(CountryYearGroup.NEITHER)
            assert dist.median(CountryYearGroup.OUTAGES) < \
                dist.median(CountryYearGroup.NEITHER)

    def test_figure7_economy_ordering(self, distributions):
        for field in ("gdp_per_capita", "broadband_fraction"):
            dist = distributions[field]
            assert dist.median(CountryYearGroup.SHUTDOWNS) < \
                dist.median(CountryYearGroup.NEITHER)

    def test_figure8_state_share_ordering(self, country_years,
                                          pipeline_result):
        shares = state_share_distributions(
            country_years, pipeline_result.state_shares)
        for field in ("state_owned_address_space", "state_owned_eyeballs"):
            dist = shares[field]
            assert dist.median(CountryYearGroup.SHUTDOWNS) > \
                dist.median(CountryYearGroup.NEITHER)

    def test_figure9_split_shifts_shutdown_curve(self, country_years,
                                                 merged, pipeline_result):
        split = state_control_split(
            country_years, merged.registry, pipeline_result.vdem,
            pipeline_result.state_shares)
        controlled = split["state_controlled"]
        non_controlled = split["non_state_controlled"]
        # Shutdown country-years in state-controlled space are more
        # autocratic (paper: means 0.13 vs 0.22).
        assert controlled.median(CountryYearGroup.SHUTDOWNS) <= \
            non_controlled.median(CountryYearGroup.SHUTDOWNS) + 0.05

    def test_rows_render(self, distributions):
        rows = distributions["liberal_democracy"].rows()
        assert len(rows) == 3


class TestTable4:
    @pytest.fixture(scope="class")
    def table(self, merged, pipeline_result):
        return mobilization_table(
            merged, pipeline_result.coups, pipeline_result.elections,
            pipeline_result.protests)

    def test_shutdown_risk_ratios(self, table):
        assert table.risk_ratio("election") > 3
        assert table.risk_ratio("coup") > 50
        assert table.risk_ratio("protest") > 3

    def test_outages_not_elevated(self, table):
        for kind in ("election", "protest"):
            shutdown_ratio = table.risk_ratio(kind)
            outage_ratio = table.outage_risk_ratio(kind)
            assert outage_ratio < shutdown_ratio / 2
            assert outage_ratio < 4
        # Coup days are so few that a single coincidence (or a blackout
        # whose cause reporting was missed) dominates the ratio; assert
        # on the raw count as the paper's Pr(Outage)=0.000 row does.
        coup_outages = table.rates["coup"][1]
        assert coup_outages.outcomes_on_condition <= 2

    def test_rows_render(self, table):
        rows = table.rows()
        assert len(rows) == 7  # header + 2 per event kind


class TestTemporal:
    @pytest.fixture(scope="class")
    def analysis(self, merged):
        return analyze_temporal(merged)

    def test_figure10_durations(self, analysis):
        shutdowns = analysis.shutdowns
        outages = analysis.outages
        assert shutdowns.durations_h.median > 2 * outages.durations_h.median
        assert shutdowns.frac_duration_30min_multiple > 0.55
        assert outages.frac_duration_30min_multiple < 0.35
        assert shutdowns.frac_duration_round_hours > 0.25
        assert outages.frac_duration_round_hours < 0.05

    def test_figure11_recurrence(self, analysis):
        shutdowns = analysis.shutdowns
        outages = analysis.outages
        assert shutdowns.intervals_days.median <= 2.0
        assert outages.intervals_days.median > 20.0
        assert shutdowns.frac_interval_1_to_4_days > 0.5
        assert outages.frac_interval_1_to_4_days < 0.02

    def test_figure12_13_start_minutes(self, analysis):
        shutdowns = analysis.shutdowns
        outages = analysis.outages
        assert shutdowns.frac_on_hour_or_half_utc > 0.6
        assert outages.frac_on_hour_or_half_utc < 0.35
        assert shutdowns.frac_on_hour_local > 0.6
        # Outage start minutes look uniform over the 5-minute grid.
        assert abs(outages.frac_on_hour_local - 1 / 12) < 0.07

    def test_figure14_night_concentration(self, analysis):
        assert analysis.shutdowns.frac_start_00_to_06_local > 0.5
        assert analysis.outages.frac_start_00_to_06_local < 0.45

    def test_figure15_weekdays(self, analysis):
        shutdowns = analysis.shutdowns
        outages = analysis.outages
        friday = 4
        assert shutdowns.weekday_pdf[friday] < 1 / 7
        assert shutdowns.friday_p_value < 0.05
        assert outages.friday_p_value > 0.05
        assert abs(outages.weekday_pdf[friday] - 1 / 7) < 0.05

    def test_rows_render(self, analysis):
        assert len(analysis.rows()) == 24


class TestFigure16:
    def test_observability_shape(self, merged):
        table = observability_table(merged)
        assert table.shutdown_all_pct > 85.0
        assert table.outage_all_pct < table.shutdown_all_pct - 15.0
        from repro.signals.kinds import SignalKind
        assert table.outage_pct[SignalKind.TELESCOPE] < \
            table.outage_pct[SignalKind.BGP]

    def test_rows_render(self, merged):
        assert len(observability_table(merged).rows()) == 4


class TestFigure2:
    def test_trends(self, pipeline_result):
        trends = kio_trends(pipeline_result.kio_events)
        assert set(trends.per_year) == set(range(2016, 2022))
        # Totals grew substantially from 2016 to 2019 (paper Fig 2).
        assert trends.totals[2019] > 1.2 * trends.totals[2016]
        # Full-network is never a trailing category.
        for year, counts in trends.per_year.items():
            assert counts.get(KIOCategory.FULL_NETWORK, 0) >= \
                counts.get(KIOCategory.THROTTLING, 0)

    def test_series_accessor(self, pipeline_result):
        trends = kio_trends(pipeline_result.kio_events)
        series = trends.series(KIOCategory.FULL_NETWORK)
        assert [year for year, _ in series] == sorted(
            set(range(2016, 2022)))


class TestFigure3:
    def test_series_example_exists(self, merged):
        event_id = best_series_example(merged, min_ioda_events=4)
        assert event_id is not None

    def test_timeline_structure(self, merged):
        event_id = best_series_example(merged, min_ioda_events=4)
        timeline = match_timeline(merged, event_id)
        assert len(timeline.ioda_spans) >= 4
        # Every matched IODA span starts within the match window.
        for span in timeline.ioda_spans:
            assert timeline.match_window_utc.contains(span.start)
        # The lookback widens the window before the KIO span.
        assert timeline.match_window_utc.start < timeline.kio_span_utc.start
        assert len(timeline.rows()) >= 8
