"""Bitwise equivalence of the columnar detection core and its scalar
reference implementations.

The columnar paths (``trailing_median``, ``AlertDetector.detect``,
``group_alerts``, ``ActiveProbingRun.up_count_series``) must produce
*bitwise-identical* output to the per-bin/per-round reference code they
replace — not merely approximately equal.  These tests drive both paths
over randomized series covering every detector configuration, missing
history prefixes, threshold-boundary ties, and the scalar escape hatch
(``REPRO_SCALAR_DETECT=1``), and assert exact equality end to end.
"""

import numpy as np
import pytest

from repro.errors import SignalError
from repro.flags import SCALAR_DETECT_ENV
from repro.ioda.detectors import DETECTOR_CONFIGS, detector_for
from repro.probing.blocks import ProbedBlock
from repro.probing.scheduler import ActiveProbingRun
from repro.signals.alerts import Alert, AlertDetector, DetectorConfig, \
    group_alerts, group_alerts_scalar
from repro.signals.kinds import SignalKind
from repro.signals.series import TimeSeries
from repro.stats.rolling import rolling_median, trailing_median
from repro.timeutils.timestamps import FIVE_MINUTES, TimeRange, utc


def _random_series(rng, n, width=FIVE_MINUTES):
    """A plausibly signal-shaped series: positive level plus noise,
    with some dips and quantized stretches that produce median ties."""
    base = rng.uniform(50, 5000)
    values = base + rng.normal(0, base * 0.05, size=n)
    # Quantize a stretch so the window holds repeated values (ties).
    k = n // 3
    values[k:2 * k] = np.round(values[k:2 * k])
    # Carve a couple of drops below every threshold.
    for _ in range(rng.integers(1, 4)):
        at = int(rng.integers(0, max(1, n - 10)))
        depth = rng.uniform(0.0, 1.0)
        values[at:at + int(rng.integers(1, 10))] *= depth
    return np.maximum(values, 0.0)


class TestTrailingMedian:
    def test_matches_rolling_median_randomized(self):
        rng = np.random.default_rng(7)
        for trial in range(25):
            n = int(rng.integers(2, 400))
            window = int(rng.integers(1, 80))
            values = _random_series(rng, n)
            got = trailing_median(values, window)
            want = rolling_median(values, window)
            assert np.isnan(got[0])
            for i in range(1, n):
                assert got[i] == want[i], (trial, i, n, window)

    def test_first_skips_warmup_exactly(self):
        rng = np.random.default_rng(8)
        values = _random_series(rng, 300)
        full = trailing_median(values, 50)
        skipped = trailing_median(values, 50, first=40)
        assert np.all(np.isnan(skipped[:40]))
        assert np.array_equal(skipped[40:], full[40:])

    def test_detector_shaped_windows(self):
        """The three real detector windows, including one wider than
        the series (telescope over a short window)."""
        rng = np.random.default_rng(9)
        for window in (288, 1008, 2016):
            values = _random_series(rng, 600)
            got = trailing_median(values, window)
            want = rolling_median(values, window)
            assert all(
                got[i] == want[i] for i in range(1, len(values)))

    def test_constant_series(self):
        got = trailing_median(np.full(100, 42.0), 24)
        assert np.isnan(got[0])
        assert np.all(got[1:] == 42.0)

    def test_rejects_bad_inputs(self):
        with pytest.raises(SignalError):
            trailing_median(np.ones(10), 0)
        with pytest.raises(SignalError):
            trailing_median(np.ones((5, 2)), 3)


class TestDetectorEquivalence:
    @pytest.mark.parametrize("kind", list(SignalKind))
    def test_detect_matches_scalar_on_all_configs(self, kind):
        rng = np.random.default_rng(hash(kind.value) % 2**32)
        detector = detector_for(kind)
        width = FIVE_MINUTES if kind is not SignalKind.ACTIVE_PROBING \
            else 2 * FIVE_MINUTES
        for n in (2, 5, 50, 700, 3000):
            series = TimeSeries(0, width, _random_series(rng, n, width))
            assert detector.detect(series) \
                == detector.detect_scalar(series), (kind, n)

    def test_threshold_boundary_ties_are_not_alerts(self):
        """value == threshold * baseline must not alert on either path
        (the comparison is strict)."""
        config = DetectorConfig(threshold=0.5, history_seconds=FIVE_MINUTES,
                                min_history_fraction=1.0)
        detector = AlertDetector(config)
        # Baseline is always 100 (window of one trailing bin), so a
        # value of exactly 50 sits on the boundary.
        series = TimeSeries(0, FIVE_MINUTES,
                            [100.0, 50.0, 100.0, 49.0, 100.0])
        vec, scalar = detector.detect(series), detector.detect_scalar(series)
        assert vec == scalar
        assert [a.value for a in vec] == [49.0]

    def test_short_series_produces_no_alerts(self):
        detector = detector_for(SignalKind.TELESCOPE)
        series = TimeSeries(0, FIVE_MINUTES, [10.0, 0.0])
        assert detector.detect(series) == detector.detect_scalar(series) \
            == []

    def test_scalar_env_flag_routes_to_reference(self, monkeypatch):
        calls = []
        detector = detector_for(SignalKind.BGP)
        original = AlertDetector.detect_scalar
        monkeypatch.setattr(
            AlertDetector, "detect_scalar",
            lambda self, series: calls.append(1) or original(self, series))
        monkeypatch.setenv(SCALAR_DETECT_ENV, "1")
        detector.detect(TimeSeries(0, FIVE_MINUTES, np.full(600, 7.0)))
        assert calls


class TestGroupAlertsEquivalence:
    def _alerts(self, rng, n, width):
        times = np.sort(rng.choice(
            np.arange(n) * width, size=int(rng.integers(1, n)),
            replace=False))
        return [Alert(time=int(t), value=float(rng.uniform(0, 50)),
                      baseline=100.0) for t in times]

    def test_matches_scalar_randomized(self):
        rng = np.random.default_rng(11)
        for _ in range(50):
            alerts = self._alerts(rng, 200, FIVE_MINUTES)
            gap = int(rng.integers(0, 4))
            assert group_alerts(alerts, FIVE_MINUTES, max_gap_bins=gap) \
                == group_alerts_scalar(alerts, FIVE_MINUTES,
                                       max_gap_bins=gap)

    def test_empty_and_single(self):
        assert group_alerts([], FIVE_MINUTES) == []
        one = [Alert(time=300, value=1.0, baseline=10.0)]
        assert group_alerts(one, FIVE_MINUTES) \
            == group_alerts_scalar(one, FIVE_MINUTES)

    @pytest.mark.parametrize("grouper", [group_alerts, group_alerts_scalar])
    def test_negative_max_gap_rejected(self, grouper):
        alerts = [Alert(time=0, value=1.0, baseline=10.0)]
        with pytest.raises(SignalError, match="max gap"):
            grouper(alerts, FIVE_MINUTES, max_gap_bins=-1)

    @pytest.mark.parametrize("grouper", [group_alerts, group_alerts_scalar])
    def test_nonpositive_bin_width_rejected(self, grouper):
        with pytest.raises(SignalError, match="bin width"):
            grouper([], 0)


class TestProbingEquivalence:
    def _run(self, rng, n_blocks):
        blocks = [
            ProbedBlock(slash24=int(i),
                        response_rate=float(rng.uniform(0.15, 0.95)))
            for i in range(n_blocks)]
        return ActiveProbingRun(blocks)

    def test_up_count_series_matches_scalar(self):
        rng = np.random.default_rng(13)
        window = TimeRange(utc(2019, 1, 1), utc(2019, 1, 3))
        for trial in range(5):
            run = self._run(rng, int(rng.integers(3, 60)))
            n_rounds = (window.end - window.start) // 600
            up = rng.uniform(0.0, 1.0, size=n_rounds)
            seed = int(rng.integers(2**31))
            vec = run.up_count_series(
                window, up, np.random.default_rng(seed))
            scalar = run.up_count_series_scalar(
                window, up, np.random.default_rng(seed))
            assert vec.start == scalar.start
            assert vec.width == scalar.width
            assert vec.values.tobytes() == scalar.values.tobytes(), trial

    def test_scalar_env_flag_dispatches(self, monkeypatch):
        rng = np.random.default_rng(17)
        run = self._run(rng, 5)
        window = TimeRange(utc(2019, 1, 1), utc(2019, 1, 2))
        up = np.ones((window.end - window.start) // 600)
        monkeypatch.setenv(SCALAR_DETECT_ENV, "1")
        flagged = run.up_count_series(window, up, np.random.default_rng(3))
        reference = run.up_count_series_scalar(
            window, up, np.random.default_rng(3))
        assert flagged.values.tobytes() == reference.values.tobytes()


class TestSeriesArrayAPI:
    def test_arrays_roundtrip_through_from_arrays(self):
        series = TimeSeries(600, FIVE_MINUTES, [1.0, 2.0, 3.0])
        rebuilt = TimeSeries.from_arrays(*series.arrays())
        assert rebuilt.start == series.start
        assert rebuilt.width == series.width
        assert np.array_equal(rebuilt.values, series.values)

    def test_arrays_values_are_live_view(self):
        series = TimeSeries(0, FIVE_MINUTES, [1.0, 2.0])
        _, values = series.arrays()
        values[0] = 99.0
        assert series.at(0) == 99.0

    def test_bin_starts_match_iteration(self):
        series = TimeSeries(300, FIVE_MINUTES, [5.0, 6.0, 7.0])
        assert list(series.bin_starts) == [ts for ts, _ in series]

    def test_from_arrays_rejects_bad_columns(self):
        with pytest.raises(SignalError, match="at least two"):
            TimeSeries.from_arrays(np.array([0]), np.array([1.0]))
        with pytest.raises(SignalError, match="evenly spaced"):
            TimeSeries.from_arrays(np.array([0, 300, 900]), np.ones(3))
        with pytest.raises(SignalError, match="evenly spaced"):
            TimeSeries.from_arrays(np.array([600, 300]), np.ones(2))
        with pytest.raises(SignalError, match="length"):
            TimeSeries.from_arrays(np.array([0, 300]), np.ones(3))


class TestPipelineByteIdentity:
    """The whole pipeline — signals, detection, curation, merge — must
    be byte-identical with the columnar paths on and off, on every
    executor backend."""

    @pytest.fixture(scope="class")
    def small_run(self):
        import repro.api as api
        from repro.world.scenario import ScenarioConfig
        config = ScenarioConfig(seed=11, years=(2019,))
        period = TimeRange(utc(2019, 1, 1), utc(2019, 5, 1))
        kwargs = dict(scenario_config=config, study_period=period)
        return kwargs, api.run(**kwargs)

    @staticmethod
    def _record_bytes(result):
        import json
        from repro import io
        return json.dumps(
            [io.record_to_dict(r) for r in result.curated_records],
            sort_keys=True)

    @pytest.mark.parametrize("backend", ["serial", "thread", "process"])
    def test_scalar_flag_does_not_change_output(self, small_run, backend,
                                                monkeypatch):
        import repro.api as api
        kwargs, columnar = small_run
        monkeypatch.setenv(SCALAR_DETECT_ENV, "1")
        scalar = api.run(
            workers=1 if backend == "serial" else 2, backend=backend,
            signal_cache_size=0, **kwargs)
        assert self._record_bytes(scalar) == self._record_bytes(columnar)
        assert len(scalar.kio_events) == len(columnar.kio_events)

    def test_flag_off_matches_across_backends(self, small_run):
        import repro.api as api
        kwargs, columnar = small_run
        parallel = api.run(workers=2, backend="thread", **kwargs)
        assert self._record_bytes(parallel) == self._record_bytes(columnar)
