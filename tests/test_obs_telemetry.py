"""Live run telemetry: the heartbeat sampler and live-journal readers.

The acceptance bar for the telemetry subsystem:

- heartbeats are **journal-only**: curated records are byte-identical
  with telemetry on or off on every backend (serial, thread, process);
- every backend leaves well-formed heartbeat events in the parent
  journal — process workers sample locally and their beats are adopted
  home with their spans and metrics;
- the journal readers survive a journal that is still being written:
  a torn final line (even torn inside a multi-byte UTF-8 sequence)
  is skipped and the readable prefix replays intact.
"""

import json
import threading
import time

import pytest

import repro.api as api
from repro import io
from repro.exec.stats import publish_shard_done, publish_shard_plan
from repro.obs import (
    HeartbeatSampler,
    MetricsRegistry,
    Observability,
    TelemetryConfig,
    Tracer,
    parse_interval,
    read_journal,
    summarize_events,
)
from repro.obs.runtime import NULL_OBS
from repro.obs.telemetry import HEARTBEATS_COUNTER
from repro.timeutils.timestamps import TimeRange, utc
from repro.world.scenario import ScenarioConfig

SMALL_CONFIG = ScenarioConfig(seed=7, years=(2018,))
SMALL_PERIOD = TimeRange(utc(2018, 1, 1), utc(2018, 7, 1))

#: Keys every heartbeat event carries (shards/signal_cache are optional).
HEARTBEAT_KEYS = {"type", "seq", "ts", "elapsed", "pid", "final",
                  "open_spans", "counters", "gauges", "histograms",
                  "proc"}


def _record_bytes(records):
    return json.dumps([io.record_to_dict(r) for r in records],
                      sort_keys=True)


def _sampler(sink, interval=60.0, **kwargs):
    """A sampler wired to fresh obs primitives, never auto-started."""
    tracer = Tracer()
    tracer.track_open = True
    metrics = MetricsRegistry()
    sampler = HeartbeatSampler(
        TelemetryConfig(interval=interval, **kwargs),
        tracer=tracer, metrics=metrics, sink=sink)
    return sampler, tracer, metrics


class TestParseInterval:
    @pytest.mark.parametrize("spec,expected", [
        ("1s", 1.0), ("500ms", 0.5), ("2m", 120.0), ("0.25", 0.25),
        (2, 2.0), (0.1, 0.1), (" 5S ", 5.0),
    ])
    def test_specs(self, spec, expected):
        assert parse_interval(spec) == expected

    @pytest.mark.parametrize("spec", ["abc", "", "1x", "-1s", 0, -2])
    def test_bad_specs_rejected(self, spec):
        with pytest.raises(ValueError):
            parse_interval(spec)


class TestTelemetryConfig:
    def test_defaults(self):
        config = TelemetryConfig()
        assert config.interval == 5.0
        assert config.final_beat

    def test_invalid_interval_rejected(self):
        with pytest.raises(ValueError):
            TelemetryConfig(interval=0)

    def test_coerce(self):
        assert TelemetryConfig.coerce(None) is None
        config = TelemetryConfig(interval=2.0)
        assert TelemetryConfig.coerce(config) is config
        assert TelemetryConfig.coerce("250ms").interval == 0.25
        assert TelemetryConfig.coerce(3).interval == 3.0


class TestHeartbeatSampler:
    def test_beat_shape(self):
        beats = []
        sampler, tracer, metrics = _sampler(beats.append)
        with tracer.span("run"):
            with tracer.span("stage:curate"):
                event = sampler.beat()
        assert beats == [event]
        assert HEARTBEAT_KEYS <= set(event)
        assert event["type"] == "heartbeat"
        assert event["seq"] == 1
        assert not event["final"]
        assert event["open_spans"] == ["run", "run/stage:curate"]
        assert event["proc"]["cpu_s"] >= 0.0

    def test_counter_deltas_between_beats(self):
        beats = []
        sampler, _, metrics = _sampler(beats.append)
        metrics.counter("work.items").inc(3)
        first = sampler.beat()
        assert first["counters"]["work.items"] == 3
        metrics.counter("work.items").inc(2)
        second = sampler.beat()
        assert second["counters"]["work.items"] == 2
        # Unchanged counters are omitted from the delta map entirely.
        third = sampler.beat()
        assert "work.items" not in third["counters"]

    def test_heartbeats_counter_self_reports(self):
        sampler, _, metrics = _sampler(lambda event: None)
        sampler.beat()
        sampler.beat()
        assert metrics.counter(HEARTBEATS_COUNTER).value == 2
        # The bump lands after the delta computation, so the second
        # beat reports the first beat's increment — never its own.
        event = sampler.beat()
        assert event["counters"][HEARTBEATS_COUNTER] == 1

    def test_histogram_tails(self):
        beats = []
        sampler, _, metrics = _sampler(beats.append)
        histogram = metrics.histogram("shard.seconds")
        for value in (0.2, 0.4, 0.6, 0.8):
            histogram.observe(value)
        metrics.histogram("never.observed")
        tails = sampler.beat()["histograms"]
        assert set(tails) == {"shard.seconds"}
        assert tails["shard.seconds"]["count"] == 4
        expected = histogram.percentiles((50, 99))
        assert tails["shard.seconds"]["p50"] == round(expected[50], 6)
        assert tails["shard.seconds"]["p99"] == round(expected[99], 6)

    def test_shard_progress_and_eta(self):
        sampler, _, metrics = _sampler(lambda event: None)
        assert "shards" not in sampler.beat()
        publish_shard_plan(metrics, 8)
        publish_shard_done(metrics, 2)
        shards = sampler.beat()["shards"]
        assert shards["completed"] == 2
        assert shards["total"] == 8
        assert shards["eta_seconds"] is not None
        publish_shard_done(metrics, 6)
        assert sampler.beat()["shards"]["eta_seconds"] == 0.0

    def test_signal_cache_block(self):
        sampler, _, metrics = _sampler(lambda event: None)
        assert "signal_cache" not in sampler.beat()
        metrics.counter("platform.signal.cache.hits").inc(3)
        metrics.counter("platform.signal.cache.misses").inc(1)
        cache = sampler.beat()["signal_cache"]
        assert cache == {"hits": 3, "misses": 1, "hit_rate": 0.75}

    def test_stream_block(self):
        # Present only once a stream has advanced (the watermark gauge
        # exists); lag is optional until the first advance computes it.
        sampler, _, metrics = _sampler(lambda event: None)
        assert "stream" not in sampler.beat()
        metrics.gauge("stream.watermark").set(1_500_000_000)
        metrics.gauge("stream.open_events").set(4)
        metrics.gauge("stream.windows_active").set(2)
        metrics.counter("stream.bins_pushed").inc(8640)
        block = sampler.beat()["stream"]
        assert block == {"watermark": 1_500_000_000, "open_events": 4,
                         "windows_active": 2, "bins_pushed": 8640}
        metrics.gauge("stream.lag_seconds").set(86400.0)
        assert sampler.beat()["stream"]["lag_seconds"] == 86400

    def test_background_thread_beats_and_final(self):
        beats = []
        sampler, _, _ = _sampler(beats.append, interval=0.02)
        sampler.start()
        assert sampler.running
        deadline = time.monotonic() + 5.0
        while len(beats) < 2 and time.monotonic() < deadline:
            time.sleep(0.01)
        sampler.stop()
        assert not sampler.running
        assert len(beats) >= 3  # two periodic plus the final beat
        assert [event["seq"] for event in beats] \
            == list(range(1, len(beats) + 1))
        assert beats[-1]["final"]
        assert all(not event["final"] for event in beats[:-1])

    def test_start_and_stop_are_idempotent(self):
        beats = []
        sampler, _, _ = _sampler(beats.append)
        assert sampler.start() is sampler.start()
        sampler.stop()
        sampler.stop()
        assert len(beats) == 1  # exactly one final beat

    def test_final_beat_can_be_disabled(self):
        beats = []
        sampler, _, _ = _sampler(beats.append, final_beat=False)
        sampler.start()
        sampler.stop()
        assert beats == []

    def test_beat_is_thread_safe(self):
        beats = []
        lock = threading.Lock()

        def sink(event):
            with lock:
                beats.append(event)

        sampler, _, metrics = _sampler(sink)
        threads = [threading.Thread(target=sampler.beat)
                   for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert sorted(event["seq"] for event in beats) \
            == list(range(1, 9))


class TestObservabilityWiring:
    def test_telemetry_heartbeats_into_journal(self, tmp_path):
        path = tmp_path / "run.jsonl"
        obs = Observability(journal=str(path))
        obs.enable_telemetry(TelemetryConfig(interval=60.0))
        assert obs.tracer.track_open
        obs.start_telemetry()
        obs.stop_telemetry()
        obs.finish()
        beats = read_journal(path, types={"heartbeat"})
        assert len(beats) == 1 and beats[0]["final"]

    def test_worker_session_buffers_and_parent_adopts(self, tmp_path):
        worker = Observability(telemetry=TelemetryConfig(interval=60.0))
        worker.start_telemetry()
        worker.stop_telemetry()
        assert len(worker.heartbeats) == 1

        path = tmp_path / "parent.jsonl"
        parent = Observability(journal=str(path))
        parent.adopt_heartbeats(worker.heartbeats)
        parent.finish()
        beats = read_journal(path, types={"heartbeat"})
        assert len(beats) == 1
        assert beats[0]["pid"] == worker.heartbeats[0]["pid"]

    def test_null_observability_is_inert(self):
        NULL_OBS.enable_telemetry("1s")
        NULL_OBS.start_telemetry()
        NULL_OBS.stop_telemetry()
        NULL_OBS.adopt_heartbeats([{"type": "heartbeat"}])
        assert NULL_OBS.telemetry is None
        assert NULL_OBS.heartbeats == []


class TestPipelineIntegration:
    @pytest.mark.parametrize("backend", ["serial", "thread", "process"])
    def test_heartbeats_land_in_journal_on_every_backend(
            self, tmp_path, backend):
        path = tmp_path / f"{backend}.jsonl"
        api.run(scenario_config=SMALL_CONFIG, study_period=SMALL_PERIOD,
                workers=2, backend=backend, journal=path,
                telemetry="20ms")
        events = read_journal(path)
        beats = [e for e in events if e["type"] == "heartbeat"]
        assert beats, f"no heartbeats on the {backend} backend"
        for event in beats:
            assert HEARTBEAT_KEYS <= set(event)
        assert any(event["final"] for event in beats)
        # The parent sampler saw the executor's progress series.
        final = [e for e in beats if e["final"]]
        assert any("shards" in e for e in final)
        done = max((e.get("shards", {}).get("completed", 0)
                    for e in beats), default=0)
        assert done == max(e.get("shards", {}).get("total", 0)
                           for e in beats)
        # summarize_events counts them without disturbing span totals.
        summary = summarize_events(events)
        assert summary.n_heartbeats == len(beats)
        assert summary.n_spans > 0

    def test_telemetry_does_not_perturb_results(self):
        baseline = api.run(scenario_config=SMALL_CONFIG,
                           study_period=SMALL_PERIOD)
        expected = _record_bytes(baseline.events.curated_records)
        for backend in ("serial", "thread", "process"):
            obs = Observability(
                telemetry=TelemetryConfig(interval=0.05))
            result = api.run(
                scenario_config=SMALL_CONFIG, study_period=SMALL_PERIOD,
                workers=2, backend=backend, observability=obs)
            assert _record_bytes(result.events.curated_records) \
                == expected, f"telemetry perturbed the {backend} backend"


class TestLiveJournalReaders:
    def _journal_lines(self):
        return [
            json.dumps({"type": "run_start", "version": 1, "ts": 1.0}),
            json.dumps({"type": "heartbeat", "seq": 1, "final": False}),
            json.dumps({"type": "span", "span_id": 1, "parent_id": None,
                        "name": "run", "start": 0.0, "duration": 1.0}),
            json.dumps({"type": "heartbeat", "seq": 2, "final": True}),
        ]

    def test_torn_final_line_is_skipped(self, tmp_path):
        path = tmp_path / "live.jsonl"
        lines = self._journal_lines()
        torn = json.dumps({"type": "span", "span_id": 2})[:9]
        path.write_text("\n".join(lines) + "\n" + torn,
                        encoding="utf-8")
        events = read_journal(path)
        assert [e["type"] for e in events] \
            == ["run_start", "heartbeat", "span", "heartbeat"]

    def test_line_torn_inside_utf8_sequence(self, tmp_path):
        path = tmp_path / "live.jsonl"
        intact = ("\n".join(self._journal_lines()) + "\n").encode("utf-8")
        torn = json.dumps({"type": "span", "name": "café"},
                          ensure_ascii=False).encode("utf-8")
        # Cut inside the 2-byte UTF-8 sequence of the final e-acute.
        path.write_bytes(intact + torn[:-2])
        events = read_journal(path)
        assert len(events) == 4, "torn UTF-8 tail should not eat the prefix"

    def test_types_filter(self, tmp_path):
        path = tmp_path / "live.jsonl"
        path.write_text("\n".join(self._journal_lines()) + "\n",
                        encoding="utf-8")
        beats = read_journal(path, types={"heartbeat"})
        assert [e["seq"] for e in beats] == [1, 2]
        spans = read_journal(path, types={"span", "run_start"})
        assert [e["type"] for e in spans] == ["run_start", "span"]

    def test_heartbeat_interleaving_preserves_summary(self, tmp_path):
        path = tmp_path / "live.jsonl"
        path.write_text("\n".join(self._journal_lines()) + "\n",
                        encoding="utf-8")
        summary = summarize_events(read_journal(path))
        assert summary.n_heartbeats == 2
        assert summary.n_spans == 1
