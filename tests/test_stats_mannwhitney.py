"""Tests for the Mann-Whitney U implementation."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import SignalError
from repro.stats.mannwhitney import mann_whitney_u, rankdata

scipy_stats = pytest.importorskip("scipy.stats")


class TestRankdata:
    def test_simple(self):
        assert rankdata([30, 10, 20]) == [3.0, 1.0, 2.0]

    def test_midranks_for_ties(self):
        assert rankdata([10, 20, 20, 30]) == [1.0, 2.5, 2.5, 4.0]

    def test_all_equal(self):
        assert rankdata([5, 5, 5]) == [2.0, 2.0, 2.0]

    @given(st.lists(st.integers(min_value=-50, max_value=50),
                    min_size=1, max_size=80))
    def test_matches_scipy(self, values):
        ours = rankdata(values)
        theirs = scipy_stats.rankdata(values)
        assert np.allclose(ours, theirs)


class TestMannWhitney:
    def test_clearly_shifted_samples(self):
        result = mann_whitney_u(range(100, 150), range(0, 50))
        assert result.p_value < 1e-10
        assert result.effect_size == 1.0

    def test_identical_distributions(self):
        rng = np.random.default_rng(1)
        a = rng.normal(size=200)
        b = rng.normal(size=200)
        result = mann_whitney_u(a, b)
        assert result.p_value > 0.01

    def test_all_values_tied(self):
        result = mann_whitney_u([1, 1, 1], [1, 1])
        assert result.p_value == 1.0

    def test_empty_rejected(self):
        with pytest.raises(SignalError):
            mann_whitney_u([], [1.0])

    @settings(max_examples=60, deadline=None)
    @given(st.lists(st.integers(min_value=-20, max_value=20),
                    min_size=8, max_size=60),
           st.lists(st.integers(min_value=-20, max_value=20),
                    min_size=8, max_size=60))
    def test_matches_scipy_asymptotic(self, a, b):
        ours = mann_whitney_u(a, b)
        theirs = scipy_stats.mannwhitneyu(
            a, b, alternative="two-sided", method="asymptotic")
        assert ours.u_statistic == pytest.approx(theirs.statistic)
        assert ours.p_value == pytest.approx(theirs.pvalue, rel=1e-6,
                                             abs=1e-12)

    def test_symmetry(self):
        a = [1, 5, 9, 12]
        b = [2, 3, 4, 20, 21]
        forward = mann_whitney_u(a, b)
        backward = mann_whitney_u(b, a)
        assert forward.p_value == pytest.approx(backward.p_value)
        assert forward.u_statistic + backward.u_statistic == \
            len(a) * len(b)


class TestGroupComparisons:
    def test_figure4_separations_significant(self, pipeline_result):
        from repro.analysis.country_year import CountryYearGroup, \
            group_country_years
        from repro.analysis.institutions import institution_distributions
        from repro.analysis.significance import compare_groups
        merged = pipeline_result.merged
        table = group_country_years(merged, [2018, 2019, 2020, 2021])
        dists = institution_distributions(
            table, merged.registry, pipeline_result.vdem,
            pipeline_result.worldbank)
        comparison = compare_groups(dists["liberal_democracy"])
        assert comparison.p_value(
            CountryYearGroup.SHUTDOWNS, CountryYearGroup.NEITHER) < 1e-6
        assert comparison.p_value(
            CountryYearGroup.OUTAGES, CountryYearGroup.NEITHER) < 1e-6
        assert len(comparison.rows()) == 3
