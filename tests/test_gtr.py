"""Tests for the Google-Transparency-Report-style extension signal."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.gtr import GTRCorroborator, GTRProduct, GTRSimulator
from repro.signals.entities import EntityScope
from repro.timeutils.timestamps import DAY, HOUR, TimeRange
from repro.world.scenario import STUDY_PERIOD


@pytest.fixture(scope="module")
def simulator(scenario):
    return GTRSimulator(scenario)


class TestGTRSimulator:
    def test_unknown_product_rejected(self, simulator):
        with pytest.raises(ConfigurationError):
            simulator.series("SY", "maps", TimeRange(0, DAY))

    def test_diurnal_cycle_present(self, simulator):
        window = TimeRange(STUDY_PERIOD.start, STUDY_PERIOD.start + 2 * DAY)
        series = simulator.series("JP", GTRProduct.SEARCH, window)
        values = series.values
        assert values.max() > 1.5 * values.min()

    def test_weekend_dip(self, simulator, scenario):
        # Compare mean traffic on workdays vs weekend for a quiet country.
        window = TimeRange(STUDY_PERIOD.start,
                           STUDY_PERIOD.start + 28 * DAY)
        series = simulator.series("DE", GTRProduct.MAIL, window)
        country = scenario.registry.get("DE")
        workday_vals, weekend_vals = [], []
        for ts, value in series:
            local_day = (ts + country.utc_offset.seconds) // DAY
            weekday = (local_day + 3) % 7
            if country.workweek.is_workday(int(weekday)):
                workday_vals.append(value)
            else:
                weekend_vals.append(value)
        assert np.mean(workday_vals) > np.mean(weekend_vals)

    def test_shutdown_zeroes_traffic(self, simulator, scenario):
        event = next(d for d in scenario.shutdowns
                     if d.scope is EntityScope.COUNTRY
                     and not d.mobile_only and d.severity == 1.0
                     and d.span.duration >= 6 * HOUR
                     and STUDY_PERIOD.contains(d.span.start))
        window = TimeRange(event.span.start - DAY, event.span.end + DAY)
        series = simulator.series(event.country_iso2, GTRProduct.SEARCH,
                                  window)
        during = series.slice(event.span)
        before = series.slice(TimeRange(window.start, event.span.start))
        assert during.values.max() < 0.1 * np.median(before.values)

    def test_mobile_only_shutdown_visible(self, simulator, scenario):
        """GTR sees mobile-only events in full, unlike active probing."""
        event = next(d for d in scenario.shutdowns
                     if d.scope is EntityScope.COUNTRY and d.mobile_only
                     and d.span.duration >= 6 * HOUR
                     and STUDY_PERIOD.contains(d.span.start))
        window = TimeRange(event.span.start - DAY, event.span.end + DAY)
        series = simulator.series(event.country_iso2, GTRProduct.SEARCH,
                                  window)
        during = series.slice(event.span)
        before = series.slice(TimeRange(window.start, event.span.start))
        assert np.median(during.values) < 0.2 * np.median(before.values)

    def test_deterministic(self, simulator):
        window = TimeRange(STUDY_PERIOD.start, STUDY_PERIOD.start + DAY)
        a = simulator.series("SY", GTRProduct.VIDEO, window)
        b = simulator.series("SY", GTRProduct.VIDEO, window)
        assert np.array_equal(a.values, b.values)


class TestGTRCorroborator:
    def test_confirms_real_shutdown(self, simulator, scenario):
        corroborator = GTRCorroborator(simulator)
        event = next(d for d in scenario.shutdowns
                     if d.scope is EntityScope.COUNTRY
                     and d.span.duration >= 4 * HOUR
                     and STUDY_PERIOD.contains(d.span.start))
        assert corroborator.corroborates(event.country_iso2, event.span)

    def test_rejects_quiet_period(self, simulator, scenario):
        corroborator = GTRCorroborator(simulator)
        quiet = TimeRange(STUDY_PERIOD.start + 10 * DAY,
                          STUDY_PERIOD.start + 10 * DAY + 6 * HOUR)
        assert not scenario.disruptions_in(
            quiet.expand(before=DAY, after=DAY), country_iso2="JP")
        assert not corroborator.corroborates("JP", quiet)

    def test_confirms_mobile_only_event(self, simulator, scenario):
        """The key payoff: GTR corroborates what probing cannot see."""
        corroborator = GTRCorroborator(simulator)
        event = next(d for d in scenario.shutdowns
                     if d.scope is EntityScope.COUNTRY and d.mobile_only
                     and d.span.duration >= 6 * HOUR
                     and STUDY_PERIOD.contains(d.span.start))
        assert corroborator.corroborates(event.country_iso2, event.span)
