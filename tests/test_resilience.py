"""Unit tests for repro.resilience: fault plans, retry, breakers.

The layer's contract is determinism — every fault decision and every
backoff delay is a pure function of seeds and call coordinates — so
these tests assert reproducibility as much as behavior.
"""

import pytest

from repro.errors import (
    CircuitOpenError,
    ConfigurationError,
    CorruptPageError,
    RetriesExhaustedError,
    SourceTimeoutError,
    TransientSourceError,
)
from repro.resilience import (
    BreakerBoard,
    BreakerPolicy,
    BreakerState,
    CircuitBreaker,
    FaultKind,
    FaultPlan,
    ResilienceConfig,
    RetryPolicy,
    call_with_retry,
    fault_scope,
    inject,
    maybe_fault,
    retry,
)

NO_WAIT = RetryPolicy(base_delay=0.0, max_delay=0.0, jitter=0.0)


# -- fault plans ----------------------------------------------------------------


class TestFaultPlanParse:
    def test_parses_every_clause(self):
        plan = FaultPlan.parse(
            "rate=0.25;fail_first=2;permanent=sy+IR;seed=9;"
            "kinds=error+timeout;sites=platform.signal")
        assert plan.rate == 0.25
        assert plan.fail_first == 2
        assert plan.permanent == ("IR", "SY")
        assert plan.seed == 9
        assert plan.kinds == (FaultKind.ERROR, FaultKind.TIMEOUT)
        assert plan.sites == ("platform.signal",)

    def test_empty_spec_is_empty_plan(self):
        assert FaultPlan.parse("").empty
        assert not FaultPlan.parse("fail_first=1").empty
        assert not FaultPlan.parse("permanent=SY").empty
        assert not FaultPlan.parse("rate=0.5").empty

    @pytest.mark.parametrize("spec", [
        "rate", "rate=", "frequency=0.5", "kinds=exploded", "rate=1.5",
        "fail_first=-1",
    ])
    def test_bad_specs_rejected(self, spec):
        with pytest.raises(ConfigurationError):
            FaultPlan.parse(spec)


class TestFaultPlanDecide:
    def test_decision_is_pure(self):
        plan = FaultPlan(rate=0.5, seed=11)
        first = [plan.decide("site", "SY", 0, i) for i in range(50)]
        again = [plan.decide("site", "SY", 0, i) for i in range(50)]
        assert first == again
        assert any(first)      # rate=0.5 over 50 draws
        assert not all(first)

    def test_fail_first_faults_exactly_first_attempts(self):
        plan = FaultPlan(fail_first=2)
        assert plan.decide("s", "SY", 0, 0) is not None
        assert plan.decide("s", "SY", 1, 0) is not None
        assert plan.decide("s", "SY", 2, 0) is None
        # Only the first call of a faulting attempt faults.
        assert plan.decide("s", "SY", 0, 1) is None

    def test_permanent_key_always_faults(self):
        plan = FaultPlan(permanent=("SY",))
        assert all(plan.decide("s", "SY", attempt, 0) is not None
                   for attempt in range(10))
        assert plan.decide("s", "IR", 0, 0) is None

    def test_sites_filter(self):
        plan = FaultPlan(fail_first=1, sites=("platform.signal",))
        assert plan.decide("platform.signal", "SY", 0, 0) is not None
        assert plan.decide("datasets.load", "SY", 0, 0) is None


class TestMaybeFault:
    def test_noop_without_plan(self):
        with fault_scope("SY"):
            maybe_fault("site")  # must not raise

    def test_raises_typed_exception_under_plan(self):
        plan = FaultPlan(fail_first=1, kinds=(FaultKind.TIMEOUT,))
        with inject(plan), fault_scope("SY", attempt=0):
            with pytest.raises(SourceTimeoutError):
                maybe_fault("site")

    def test_kind_maps_to_exception_class(self):
        for kind, exc in ((FaultKind.ERROR, TransientSourceError),
                          (FaultKind.TIMEOUT, SourceTimeoutError),
                          (FaultKind.CORRUPT, CorruptPageError)):
            plan = FaultPlan(fail_first=1, kinds=(kind,))
            with inject(plan), fault_scope("SY"):
                with pytest.raises(exc):
                    maybe_fault("site")

    def test_without_scope_uses_fallback_key(self):
        plan = FaultPlan(permanent=("FEED",))
        with inject(plan):
            maybe_fault("site")  # no scope, no key: inert
            with pytest.raises(TransientSourceError):
                maybe_fault("site", key="FEED")

    def test_injection_is_scoped(self):
        plan = FaultPlan(fail_first=5)
        with inject(plan):
            pass
        with fault_scope("SY"):
            maybe_fault("site")  # plan uninstalled: must not raise


# -- retry ----------------------------------------------------------------------


class TestRetryPolicy:
    def test_backoff_schedule_is_deterministic(self):
        policy = RetryPolicy(seed=7)
        assert policy.delays("SY") == policy.delays("SY")
        assert policy.delays("SY") != policy.delays("IR")
        assert RetryPolicy(seed=8).delays("SY") != policy.delays("SY")

    def test_backoff_grows_and_caps(self):
        policy = RetryPolicy(max_retries=6, base_delay=0.1, multiplier=2.0,
                             max_delay=0.5, jitter=0.0)
        delays = policy.delays("SY")
        assert delays == (0.1, 0.2, 0.4, 0.5, 0.5, 0.5)

    def test_jitter_stays_in_band(self):
        policy = RetryPolicy(max_retries=8, base_delay=1.0, multiplier=1.0,
                             max_delay=1.0, jitter=0.5)
        assert all(1.0 <= d <= 1.5 for d in policy.delays("SY"))

    @pytest.mark.parametrize("kwargs", [
        {"max_retries": -1}, {"base_delay": -0.1}, {"multiplier": 0.5},
        {"jitter": -1.0},
    ])
    def test_invalid_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            RetryPolicy(**kwargs)


class TestCallWithRetry:
    def test_recovers_after_transient_failures(self):
        attempts = []

        def flaky():
            attempts.append(len(attempts))
            if len(attempts) < 3:
                raise TransientSourceError("boom")
            return "ok"

        slept = []
        assert call_with_retry(flaky, policy=RetryPolicy(seed=3), key="SY",
                               site="test", sleeper=slept.append) == "ok"
        assert len(attempts) == 3
        # Slept exactly the policy's deterministic schedule prefix.
        assert tuple(slept) == RetryPolicy(seed=3).delays("SY")[:2]

    def test_exhaustion_raises_with_cause(self):
        def dead():
            raise SourceTimeoutError("down")

        with pytest.raises(RetriesExhaustedError) as info:
            call_with_retry(dead, policy=NO_WAIT, key="SY", site="test")
        assert isinstance(info.value.__cause__, SourceTimeoutError)

    def test_non_transient_errors_propagate_immediately(self):
        calls = []

        def broken():
            calls.append(1)
            raise ValueError("bug, not weather")

        with pytest.raises(ValueError):
            call_with_retry(broken, policy=NO_WAIT, key="SY", site="test")
        assert len(calls) == 1

    def test_attempts_run_in_fault_scopes(self):
        # fail_first=2 is only recoverable if each attempt opens a scope
        # carrying the right attempt number.
        plan = FaultPlan(fail_first=2)

        def guarded():
            maybe_fault("test.site")
            return "ok"

        with inject(plan):
            assert call_with_retry(guarded, policy=NO_WAIT, key="SY",
                                   site="test") == "ok"

    def test_decorator_derives_key_from_args(self):
        plan = FaultPlan(permanent=("IR",))

        @retry(policy=NO_WAIT, site="test",
               key=lambda iso2: iso2)
        def load(iso2):
            maybe_fault("test.site")
            return iso2

        with inject(plan):
            assert load("SY") == "SY"
            with pytest.raises(RetriesExhaustedError):
                load("IR")


# -- breakers -------------------------------------------------------------------


class TestCircuitBreaker:
    def test_full_transition_cycle(self):
        policy = BreakerPolicy(failure_threshold=2, cooldown_calls=2,
                               half_open_successes=1)
        breaker = CircuitBreaker(policy, source="SY")
        assert breaker.state is BreakerState.CLOSED

        breaker.record_failure()
        assert breaker.state is BreakerState.CLOSED
        breaker.record_failure()
        assert breaker.state is BreakerState.OPEN

        # Open: rejects for cooldown_calls, then half-opens.
        assert not breaker.allow()
        assert breaker.allow()
        assert breaker.state is BreakerState.HALF_OPEN

        breaker.record_success()
        assert breaker.state is BreakerState.CLOSED

    def test_half_open_failure_reopens(self):
        policy = BreakerPolicy(failure_threshold=1, cooldown_calls=1,
                               half_open_successes=1)
        breaker = CircuitBreaker(policy)
        breaker.record_failure()
        assert breaker.state is BreakerState.OPEN
        assert breaker.allow()  # cooldown of 1: straight to half-open
        breaker.record_failure()
        assert breaker.state is BreakerState.OPEN

    def test_successes_reset_failure_streak(self):
        policy = BreakerPolicy(failure_threshold=2)
        breaker = CircuitBreaker(policy)
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state is BreakerState.CLOSED

    def test_board_tracks_open_sources(self):
        board = BreakerBoard(BreakerPolicy(failure_threshold=1))
        assert board.get("SY") is board.get("SY")
        board.get("SY").record_failure()
        assert board.open_sources() == ["SY"]

    def test_retry_respects_open_breaker(self):
        breaker = CircuitBreaker(
            BreakerPolicy(failure_threshold=1, cooldown_calls=5),
            source="SY")
        breaker.record_failure()
        with pytest.raises(CircuitOpenError):
            call_with_retry(lambda: "never", policy=NO_WAIT, key="SY",
                            site="test", breaker=breaker)


# -- config ---------------------------------------------------------------------


class TestResilienceConfig:
    def test_spec_string_is_parsed(self):
        config = ResilienceConfig(faults="fail_first=2;seed=5")
        assert isinstance(config.faults, FaultPlan)
        assert config.fault_plan is not None
        assert config.fault_plan.fail_first == 2

    def test_no_faults_means_no_plan(self):
        assert ResilienceConfig().fault_plan is None
        assert ResilienceConfig(faults="").fault_plan is None

    def test_rejects_junk(self):
        with pytest.raises(ConfigurationError):
            ResilienceConfig(faults=42)  # type: ignore[arg-type]
