"""Decision provenance: lineage capsules, explain, and provenance diff.

The acceptance bar for :mod:`repro.obs.provenance`:

- every curation decision leaves a content-addressed capsule, and every
  dismissal branch in :mod:`repro.ioda.curation` is reachable through
  one (the reasons below all appear on the small scenario);
- provenance is journal-only — the curated records are byte-identical
  with provenance on or off, on every backend, and under any
  ``api.stream`` chunking, and the capsule *ids* are identical too
  (content addressing makes the decision chain chunking-independent);
- ``explain_record`` reconstructs one record's chain from a journal,
  and ``diff_provenance`` attributes a cross-run record delta to the
  earliest diverging decision step;
- the CLI explain family fails with exit code 2 and a one-line
  message, never a traceback.
"""

import json

import pytest

import repro.api as api
from repro.cli import main
from repro.io import record_to_dict
from repro.ioda.curation import CurationConfig
from repro.obs.journal import read_journal
from repro.obs.provenance import (
    DECISION_STEPS,
    DrawCursor,
    ProvenanceError,
    ProvenanceRecorder,
    capsule_id_for,
    capsules_in,
    diff_provenance,
    explain_record,
    record_manifest,
    sorted_capsules,
)
from repro.obs.registry import RunRecord, RunRegistry
from repro.obs.runtime import Observability, activate
from repro.obs.summary import summarize_events
from repro.stream.engine import _Open, _WindowState
from repro.timeutils.timestamps import TimeRange, utc
from repro.world.scenario import ScenarioConfig

SMALL_CONFIG = ScenarioConfig(seed=7, years=(2018,))
#: Six months: long enough that every adjudication reason below occurs.
SMALL_PERIOD = TimeRange(utc(2018, 1, 1), utc(2018, 7, 1))
WEEK = 7 * 86400

DISMISSAL_REASONS = {"outside_period", "low_visibility",
                     "no_corroboration", "control_artifact"}
RECORDED_REASONS = {"multi_signal", "corroborated", "region_descent"}


def record_bytes(records):
    return json.dumps([record_to_dict(r) for r in records],
                      sort_keys=True)


def provenance_events(result):
    """RunResult capsules re-wrapped as journal provenance events."""
    return [{"type": "provenance", **c} for c in result.provenance]


def small_run(**kwargs):
    return api.run(scenario_config=SMALL_CONFIG,
                   study_period=SMALL_PERIOD, **kwargs)


@pytest.fixture(scope="module")
def journal_path(tmp_path_factory):
    return tmp_path_factory.mktemp("prov") / "run.jsonl"


@pytest.fixture(scope="module")
def prov_run(journal_path):
    return small_run(provenance=True, journal=journal_path)


@pytest.fixture(scope="module")
def prov_events(prov_run, journal_path):
    return read_journal(journal_path)


@pytest.fixture(scope="module")
def plain_bytes():
    return record_bytes(small_run().curated_records)


class TestCapsuleIdentity:
    def test_content_addressed(self):
        payload = {"stage": "adjudicate", "country_iso2": "SY",
                   "outcome": "recorded"}
        assert capsule_id_for(payload) == capsule_id_for(dict(payload))
        assert capsule_id_for(payload) != capsule_id_for(
            {**payload, "outcome": "dismissed"})
        assert len(capsule_id_for(payload)) == 16
        int(capsule_id_for(payload), 16)

    def test_key_order_does_not_matter(self):
        a = {"stage": "adjudicate", "outcome": "recorded"}
        b = {"outcome": "recorded", "stage": "adjudicate"}
        assert capsule_id_for(a) == capsule_id_for(b)

    def test_draw_cursor_counts_draws(self):
        cursor = DrawCursor()
        assert [cursor.take() for _ in range(3)] == [0, 1, 2]
        assert cursor.index == 3

    def test_recorder_seals_and_indexes(self):
        recorder = ProvenanceRecorder()
        cid = recorder.emit({
            "stage": "adjudicate", "country_iso2": "SY",
            "outcome": "recorded",
            "record": {"local_id": 4}})
        assert recorder.capsules[0]["capsule_id"] == cid
        assert recorder.by_record[("SY", 4)] == cid

    def test_adopt_grafts_worker_capsules(self):
        worker = ProvenanceRecorder()
        worker.emit({"stage": "adjudicate", "country_iso2": "IR",
                     "outcome": "dismissed", "reason": "low_visibility"})
        parent = ProvenanceRecorder()
        parent.adopt(list(worker.capsules))
        assert [c["capsule_id"] for c in parent.capsules] \
            == [c["capsule_id"] for c in worker.capsules]


class TestRunCapsules:
    def test_result_carries_sorted_capsules(self, prov_run):
        capsules = prov_run.provenance
        assert capsules and all(c["capsule_id"] for c in capsules)
        keys = [(c["country_iso2"], c.get("window_start"))
                for c in capsules]
        assert keys == sorted(keys, key=lambda k: (k[0], k[1] or 0))

    def test_every_dismissal_branch_leaves_a_capsule(self, prov_run):
        reasons = {}
        for capsule in prov_run.provenance:
            key = (capsule["outcome"], capsule["reason"])
            reasons[key] = reasons.get(key, 0) + 1
        assert {r for (o, r) in reasons if o == "dismissed"} \
            == DISMISSAL_REASONS
        assert {r for (o, r) in reasons if o == "recorded"} \
            == RECORDED_REASONS

    def test_dismissal_capsules_carry_their_evidence(self, prov_run):
        by_reason = {}
        for capsule in prov_run.provenance:
            by_reason.setdefault(capsule["reason"], capsule)
        assert by_reason["low_visibility"]["visibility"]["visible"] is not None
        corr = by_reason["no_corroboration"]["corroboration"]
        assert corr["checked"] and not corr["corroborated"]
        control = by_reason["control_artifact"]["control"]
        assert control["artifact"] and control["controls"]
        assert "visibility" not in by_reason["outside_period"]

    def test_consumed_draws_record_substream_coordinates(self, prov_run):
        draws = [c["corroboration"]["draw"] for c in prov_run.provenance
                 if "draw" in c.get("corroboration", {})]
        assert draws
        for draw in draws:
            assert draw["substream"][0] == "curation"
            assert draw["index"] >= 0

    def test_recorded_capsules_reference_their_record(self, prov_run):
        recorded = [c for c in prov_run.provenance
                    if c["outcome"] == "recorded"]
        assert recorded
        for capsule in recorded:
            assert capsule["record"]["local_id"] >= 1
            # The recorded span is refined (anchored) from the
            # candidate span, so it overlaps rather than equals it.
            assert capsule["record"]["span"]["start"] \
                < capsule["span"]["end"]
            assert capsule["record"]["span"]["end"] \
                > capsule["span"]["start"]

    def test_manifest_maps_every_curated_record(self, prov_events,
                                                prov_run):
        manifest = record_manifest(prov_events)
        assert len(manifest) == len(prov_run.curated_records)
        ids = {c["capsule_id"] for c in prov_run.provenance}
        for record in prov_run.curated_records:
            entry = manifest[record.record_id]
            assert entry["capsule_id"] in ids
            assert entry["country_iso2"] == record.country_iso2

    def test_off_by_default(self):
        assert small_run().provenance == ()


class TestByteIdentity:
    """Records and capsule ids are backend- and chunking-independent."""

    @pytest.mark.parametrize("backend,workers", [
        ("serial", 1), ("thread", 4), ("process", 2)])
    def test_backend_invariance(self, plain_bytes, prov_run, backend,
                                workers):
        result = small_run(provenance=True, backend=backend,
                           workers=workers)
        assert record_bytes(result.curated_records) == plain_bytes
        assert {c["capsule_id"] for c in result.provenance} \
            == {c["capsule_id"] for c in prov_run.provenance}

    @pytest.mark.parametrize("step", [WEEK, 30 * 86400])
    def test_stream_chunking_invariance(self, plain_bytes, prov_run,
                                        step):
        session = api.stream(scenario_config=SMALL_CONFIG,
                             study_period=SMALL_PERIOD, provenance=True)
        closes = []
        for events in session.replay(step=step):
            closes += [e for e in events if e.state == "close"]
        result = session.finalize()
        assert record_bytes(result.curated_records) == plain_bytes
        assert closes and all(e.capsule_id for e in closes)
        # Adjudication capsules are chunking-independent; lifecycle
        # capsules depend on how the feed was chunked and are excluded
        # from cross-run comparison.
        streamed = {c["capsule_id"] for c in result.provenance
                    if c["stage"] == "adjudicate"}
        assert streamed == {c["capsule_id"] for c in prov_run.provenance
                            if c["stage"] == "adjudicate"}

    def test_stream_events_reference_capsules_only_with_provenance(self):
        session = api.stream(scenario_config=SMALL_CONFIG,
                             study_period=SMALL_PERIOD)
        for events in session.replay(step=4 * WEEK):
            for event in events:
                assert event.capsule_id is None
                assert "capsule_id" not in event.as_dict()
        session.finalize()


class TestMergedCapsule:
    def test_merge_into_neighbor_mints_a_lifecycle_capsule(self):
        session = api.stream(scenario_config=SMALL_CONFIG,
                             study_period=SMALL_PERIOD, provenance=True)
        for _ in session.replay(step=26 * WEEK):
            pass
        engine = session._engine
        window = TimeRange(utc(2018, 2, 1), utc(2018, 2, 8))
        ws = _WindowState(window)
        open_ = _Open(key=window.start, span=window, signals=())
        obs = session._obs
        with activate(obs):
            before = obs.metrics.counter(
                "curation.decision.merged",
                reason="merged_into_neighbor").value
            cid = engine._merged_capsule("SY", ws, open_)
            after = obs.metrics.counter(
                "curation.decision.merged",
                reason="merged_into_neighbor").value
        assert after == before + 1
        capsule = next(c for c in obs.provenance.capsules
                       if c["capsule_id"] == cid)
        assert capsule["stage"] == "lifecycle"
        assert capsule["outcome"] == "merged"
        session.finalize()


class TestExplain:
    def test_explain_by_record_id(self, prov_events, prov_run):
        record = prov_run.curated_records[0]
        report = explain_record(prov_events, str(record.record_id))
        rows = report.rows()
        assert any(r.startswith("subject") for r in rows)
        assert any(r.startswith("capsule") for r in rows)
        assert any(r.startswith("record") for r in rows)
        assert record.country_iso2 in "\n".join(rows)

    def test_explain_includes_the_downstream_verdict(self, prov_events,
                                                     prov_run):
        texts = [
            "\n".join(explain_record(
                prov_events, str(r.record_id)).rows())
            for r in prov_run.curated_records]
        assert any("label" in t for t in texts)

    def test_explain_by_capsule_prefix(self, prov_events, prov_run):
        manifest = record_manifest(prov_events)
        record = prov_run.curated_records[0]
        capsule_id = manifest[record.record_id]["capsule_id"]
        report = explain_record(prov_events, capsule_id[:10])
        assert any(capsule_id in row for row in report.rows())

    def test_unknown_record_raises(self, prov_events):
        with pytest.raises(ProvenanceError, match="not found"):
            explain_record(prov_events, "999999")

    def test_capsule_less_journal_raises(self, tmp_path):
        result = small_run(journal=tmp_path / "plain.jsonl")
        assert result.provenance == ()
        with pytest.raises(ProvenanceError):
            explain_record(read_journal(tmp_path / "plain.jsonl"), "1")


class TestDiff:
    def test_self_diff_is_empty(self, prov_events):
        diff = diff_provenance(prov_events, prov_events)
        assert diff.empty
        assert "identical decision chains" in diff.rows()[0]

    def test_cross_config_delta_attributes_to_corroboration(
            self, prov_run, prov_events):
        altered = small_run(
            provenance=True,
            curation_config=CurationConfig(p_external_corroboration=0.0))
        diff = diff_provenance(prov_events, provenance_events(altered))
        assert not diff.empty
        assert diff.flips
        for step, from_outcome, to_outcome, count in diff.flips:
            assert step == "corroboration"
            assert count >= 1
        assert any(from_outcome == "recorded" and to_outcome == "dismissed"
                   for _, from_outcome, to_outcome, _ in diff.flips)
        text = "\n".join(diff.rows(label_a="base", label_b="no-corr"))
        assert "lost external corroboration" in text

    def test_steps_are_ordered_trigger_to_outcome(self):
        assert DECISION_STEPS[0] == "period"
        assert DECISION_STEPS[-1] == "outcome"

    def test_diff_requires_capsules_on_both_sides(self, prov_events):
        with pytest.raises(ProvenanceError):
            diff_provenance(prov_events, [{"type": "run_start"}])


class TestDecisionCounters:
    def test_counters_increment_without_provenance(self, tmp_path):
        small_run(journal=tmp_path / "run.jsonl")
        events = read_journal(tmp_path / "run.jsonl")
        counters = [e for e in events if e.get("type") == "metrics"][-1][
            "counters"]
        for reason in DISMISSAL_REASONS:
            assert counters[
                f"curation.decision.dismissed{{reason={reason}}}"] > 0
        for reason in RECORDED_REASONS:
            assert counters[
                f"curation.decision.recorded{{reason={reason}}}"] > 0
        assert capsules_in(events) == []

    def test_counters_match_capsule_tallies(self, prov_events):
        counters = [e for e in prov_events
                    if e.get("type") == "metrics"][-1]["counters"]
        capsules = capsules_in(prov_events)
        for outcome in ("recorded", "dismissed"):
            for reason in (DISMISSAL_REASONS if outcome == "dismissed"
                           else RECORDED_REASONS):
                key = f"curation.decision.{outcome}{{reason={reason}}}"
                tally = sum(1 for c in capsules
                            if c.get("outcome") == outcome
                            and c.get("reason") == reason)
                assert counters[key] == tally

    def test_openmetrics_exposes_decision_series(self, journal_path,
                                                 prov_run, capsys):
        assert main(["metrics", "export", str(journal_path)]) == 0
        text = capsys.readouterr().out
        assert "repro_curation_decision_dismissed_total" in text
        assert 'reason="low_visibility"' in text
        assert "repro_curation_decision_recorded_total" in text


class TestSummaryAndRegistry:
    def test_journal_summary_counts_capsules(self, prov_events,
                                             prov_run):
        summary = summarize_events(prov_events)
        assert summary.n_provenance == len(prov_run.provenance)
        assert f"{summary.n_provenance} capsules" in summary.rows()[0]

    def test_plain_summary_omits_capsules(self, tmp_path):
        small_run(journal=tmp_path / "run.jsonl")
        summary = summarize_events(read_journal(tmp_path / "run.jsonl"))
        assert summary.n_provenance == 0
        assert "capsules" not in summary.rows()[0]

    def test_registry_tallies_decisions(self, tmp_path, journal_path,
                                        prov_run):
        record = RunRegistry(tmp_path / "runs").register(
            journal_path, name="prov")
        assert record.n_provenance == len(prov_run.provenance)
        assert record.decisions["dismissed:low_visibility"] > 0
        assert record.decisions["recorded:multi_signal"] > 0
        text = "\n".join(record.rows())
        assert f"provenance    {record.n_provenance} capsules" in text
        assert "dismissed:low_visibility" in text

    def test_record_round_trips_decisions(self, tmp_path, journal_path):
        record = RunRegistry(tmp_path / "runs").register(
            journal_path, name="prov")
        clone = RunRecord.from_dict(record.as_dict())
        assert clone.n_provenance == record.n_provenance
        assert dict(clone.decisions) == dict(record.decisions)


class TestExplainCLI:
    """The explain family: exit 0 on success, 2 with one line on error."""

    def test_explain_renders_the_chain(self, journal_path, prov_run,
                                       capsys):
        record = prov_run.curated_records[0]
        assert main(["explain", str(journal_path),
                     str(record.record_id)]) == 0
        out = capsys.readouterr().out
        assert "subject" in out and "capsule" in out

    def test_unknown_record_exits_2(self, journal_path, prov_run,
                                    capsys):
        assert main(["explain", str(journal_path), "999999"]) == 2
        err = capsys.readouterr().err
        assert err.startswith("repro: error:")
        assert len(err.strip().splitlines()) == 1

    def test_missing_journal_exits_2(self, tmp_path, capsys):
        assert main(["explain", str(tmp_path / "absent.jsonl"),
                     "1"]) == 2
        assert "repro: error:" in capsys.readouterr().err

    def test_capsule_less_journal_exits_2(self, tmp_path, capsys):
        small_run(journal=tmp_path / "plain.jsonl")
        assert main(["explain", str(tmp_path / "plain.jsonl"),
                     "1"]) == 2
        err = capsys.readouterr().err
        assert err.startswith("repro: error:")

    def test_runs_diff_self_is_identical_exit_0(self, tmp_path, capsys):
        runs = tmp_path / "runs"
        small_run(provenance=True, runs_dir=runs, run_name="base")
        assert main(["--runs-dir", str(runs), "runs", "diff",
                     "--provenance", "base", "base"]) == 0
        assert "identical decision chains" in capsys.readouterr().out

    def test_runs_diff_cross_config_exit_1(self, tmp_path, capsys):
        runs = tmp_path / "runs"
        small_run(provenance=True, runs_dir=runs, run_name="base")
        small_run(
            provenance=True, runs_dir=runs, run_name="no-corr",
            curation_config=CurationConfig(p_external_corroboration=0.0))
        assert main(["--runs-dir", str(runs), "runs", "diff",
                     "--provenance", "base", "no-corr"]) == 1
        out = capsys.readouterr().out
        assert "corroboration" in out

    def test_runs_diff_without_capsules_exit_2(self, tmp_path, capsys):
        runs = tmp_path / "runs"
        small_run(runs_dir=runs, run_name="plain")
        assert main(["--runs-dir", str(runs), "runs", "diff",
                     "--provenance", "plain", "plain"]) == 2
        assert "repro: error:" in capsys.readouterr().err

    def test_run_provenance_flag_registers_capsules(self, tmp_path,
                                                    capsys):
        runs = tmp_path / "runs"
        small_run(provenance=True, runs_dir=runs, run_name="shown")
        assert main(["--runs-dir", str(runs), "runs", "show",
                     "shown"]) == 0
        out = capsys.readouterr().out
        assert "provenance" in out and "capsules" in out


class TestSortedCapsules:
    def test_none_recorder_yields_empty(self):
        assert sorted_capsules(None) == ()

    def test_order_is_deterministic(self, prov_run):
        capsules = prov_run.provenance
        assert tuple(capsules) == sorted_capsules(_recorder_of(capsules))


def _recorder_of(capsules):
    recorder = ProvenanceRecorder()
    recorder.adopt([dict(c) for c in capsules])
    return recorder
