"""Tests for scanning-campaign modelling and suppression."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.rng import substream
from repro.signals.series import TimeSeries
from repro.telescope.campaigns import (
    Campaign,
    CampaignSchedule,
    apply_campaigns,
    campaign_suppression_mask,
)
from repro.telescope.counter import unique_source_series
from repro.ioda.detectors import detector_for
from repro.signals.kinds import SignalKind
from repro.timeutils.timestamps import DAY, HOUR, TimeRange


def flat_series(n_bins=2000, level=50.0):
    return TimeSeries(0, 300, np.full(n_bins, level))


class TestCampaign:
    def test_multiplier_validated(self):
        with pytest.raises(ConfigurationError):
            Campaign(span=TimeRange(0, HOUR), multiplier=1.0)

    def test_schedule_deterministic(self):
        period = TimeRange(0, 60 * DAY)
        a = CampaignSchedule(seed=4).campaigns(period)
        b = CampaignSchedule(seed=4).campaigns(period)
        assert [(c.span, c.multiplier) for c in a] == \
            [(c.span, c.multiplier) for c in b]

    def test_schedule_rate(self):
        period = TimeRange(0, 70 * DAY)  # 10 weeks
        campaigns = CampaignSchedule(
            seed=4, rate_per_week=1.0).campaigns(period)
        assert 3 <= len(campaigns) <= 22

    def test_zero_rate(self):
        period = TimeRange(0, 70 * DAY)
        assert CampaignSchedule(
            seed=4, rate_per_week=0.0).campaigns(period) == []


class TestApplyCampaigns:
    def test_inflation_applied_in_span(self):
        series = flat_series()
        campaign = Campaign(span=TimeRange(30000, 60000), multiplier=2.0)
        inflated = apply_campaigns(series, [campaign])
        assert inflated.at(45000) == 100.0
        assert inflated.at(0) == 50.0
        # Original untouched.
        assert series.at(45000) == 50.0

    def test_disjoint_campaign_ignored(self):
        series = flat_series(n_bins=10)
        campaign = Campaign(span=TimeRange(10**7, 10**7 + HOUR),
                            multiplier=3.0)
        inflated = apply_campaigns(series, [campaign])
        assert np.array_equal(inflated.values, series.values)


class TestSuppression:
    def test_spikes_flagged(self):
        series = flat_series()
        campaign = Campaign(span=TimeRange(200 * 300, 400 * 300),
                            multiplier=3.0)
        inflated = apply_campaigns(series, [campaign])
        mask = campaign_suppression_mask(inflated)
        assert mask[250:350].all()
        assert not mask[:150].any()
        assert not mask[500:].any()

    def test_campaign_end_false_alert_without_suppression(self):
        """The failure mode: a campaign ending trips the drop detector
        because the baseline got dragged up; excluding flagged bins from
        the baseline removes the false alert."""
        rng = substream(9, "campaign-test")
        window = TimeRange(0, 16 * DAY)
        n_bins = 16 * DAY // 300
        series = unique_source_series(
            window, 60.0, np.ones(n_bins), 0, rng, overdispersion=50.0)
        # Strong 4-day campaign ending mid-window.
        campaign = Campaign(
            span=TimeRange(8 * DAY, 12 * DAY), multiplier=6.0)
        inflated = apply_campaigns(series, [campaign])
        detector = detector_for(SignalKind.TELESCOPE)
        naive_alerts = [a for a in detector.detect(inflated)
                        if a.time >= 12 * DAY]
        assert naive_alerts, "campaign end should trip the naive detector"
        # Suppress flagged bins before detection (replace with NaN-free
        # interpolation: reuse the last unflagged value).
        mask = campaign_suppression_mask(inflated)
        cleaned_values = inflated.values.copy()
        last_clean = cleaned_values[0]
        for i in range(len(cleaned_values)):
            if mask[i]:
                cleaned_values[i] = last_clean
            else:
                last_clean = cleaned_values[i]
        cleaned = TimeSeries(inflated.start, inflated.width,
                             cleaned_values)
        cleaned_alerts = [a for a in detector.detect(cleaned)
                          if a.time >= 12 * DAY]
        assert len(cleaned_alerts) < len(naive_alerts)

    def test_window_validation(self):
        with pytest.raises(ConfigurationError):
            campaign_suppression_mask(flat_series(), window_bins=0)
