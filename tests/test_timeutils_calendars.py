"""Tests for repro.timeutils.calendars."""

import pytest

from repro.timeutils.calendars import (
    MON_FRI,
    SUN_THU,
    WEEKDAY_NAMES,
    Weekday,
    Workweek,
    day_of_week,
    is_workday,
)
from repro.timeutils.timestamps import DAY, utc


class TestWorkweek:
    def test_mon_fri_friday_is_workday(self):
        assert MON_FRI.is_workday(Weekday.FRIDAY)
        assert not MON_FRI.is_workday(Weekday.SATURDAY)

    def test_sun_thu_friday_is_weekend(self):
        assert not SUN_THU.is_workday(Weekday.FRIDAY)
        assert SUN_THU.is_workday(Weekday.SUNDAY)

    def test_weekend_is_complement(self):
        assert MON_FRI.weekend == frozenset({5, 6})
        assert SUN_THU.weekend == frozenset({4, 5})

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            Workweek(frozenset())

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            Workweek(frozenset({7}))


class TestDayOfWeek:
    def test_epoch_day_is_thursday(self):
        assert day_of_week(0) == Weekday.THURSDAY

    def test_known_monday(self):
        # 2023-09-11 was a Monday.
        assert day_of_week(utc(2023, 9, 11) // DAY) == Weekday.MONDAY

    def test_is_workday(self):
        friday = utc(2023, 9, 15) // DAY
        assert is_workday(friday, MON_FRI)
        assert not is_workday(friday, SUN_THU)

    def test_weekday_names_aligned(self):
        assert WEEKDAY_NAMES[Weekday.MONDAY] == "Mon"
        assert WEEKDAY_NAMES[Weekday.SUNDAY] == "Sun"
