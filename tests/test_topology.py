"""Tests for the topology generator and operator-statistics datasets."""

import numpy as np
import pytest

from repro.countries.registry import default_registry
from repro.errors import ConfigurationError
from repro.net.asn import ASRole
from repro.net.ipv4 import IPv4Address
from repro.rng import substream
from repro.topology.eyeballs import EyeballEstimates
from repro.topology.generator import TopologyGenerator, WorldTopology
from repro.topology.geolocation import GeoDatabase
from repro.topology.metrics import compute_state_shares, \
    ground_truth_state_shares
from repro.topology.prefix2as import Prefix2ASSnapshot
from repro.topology.state_owned import StateOwnedASList


@pytest.fixture(scope="module")
def world() -> WorldTopology:
    return TopologyGenerator(seed=7).generate()


class TestTopologyGenerator:
    def test_every_country_has_a_network(self, world, registry):
        assert len(world) == len(registry)
        for country in registry:
            assert country.iso2 in world

    def test_deterministic(self, world):
        again = TopologyGenerator(seed=7).generate()
        for network in world:
            other = again.get(network.country.iso2)
            assert other.total_slash24s == network.total_slash24s
            assert [int(a.asn) for a in other.ases] == \
                [int(a.asn) for a in network.ases]

    def test_different_seed_differs(self, world):
        other = TopologyGenerator(seed=8).generate()
        totals = [n.total_slash24s for n in world]
        other_totals = [n.total_slash24s for n in other]
        assert totals != other_totals

    def test_no_overlapping_allocations(self, world):
        seen = set()
        for network_as in world.all_ases():
            for prefix in network_as.prefixes:
                for block in prefix.slash24s():
                    assert block not in seen
                    seen.add(block)

    def test_asns_unique(self, world):
        asns = [int(a.asn) for a in world.all_ases()]
        assert len(asns) == len(set(asns))

    def test_shares_sum_to_one(self, world):
        for network in world:
            total = sum(a.eyeball_share for a in network.ases)
            assert total == pytest.approx(1.0, abs=1e-9)

    def test_state_ownership_tracks_hint(self, world, registry):
        high = [c.iso2 for c in registry if c.state_isp_hint >= 0.8]
        low = [c.iso2 for c in registry if c.state_isp_hint <= 0.15]
        high_share = np.mean([
            world.get(i).state_owned_slash24_fraction() for i in high])
        low_share = np.mean([
            world.get(i).state_owned_slash24_fraction() for i in low])
        assert high_share > low_share + 0.3

    def test_mobile_excluded_from_probeable(self, world):
        for network in world:
            assert network.probeable_slash24s() <= network.total_slash24s
            mobile = sum(a.num_slash24s for a in network.ases if a.mobile)
            assert network.probeable_slash24s() == \
                network.total_slash24s - mobile

    def test_regions_share_simplex(self, world):
        for network in world:
            assert len(network.regions) >= 3
            assert sum(r.share for r in network.regions) == \
                pytest.approx(1.0, abs=1e-9)

    def test_india_has_many_regions(self, world):
        assert len(world.get("IN").regions) == 12

    def test_find_as(self, world):
        network_as = next(world.all_ases())
        assert world.find_as(int(network_as.asn)) is network_as
        assert world.find_as(1) is None

    def test_rejects_bad_scale(self):
        with pytest.raises(ConfigurationError):
            TopologyGenerator(seed=1, address_scale=0.0)

    def test_roles_present(self, world):
        roles = {a.record.role for a in world.all_ases()}
        assert ASRole.ACCESS in roles
        assert ASRole.TRANSIT in roles


class TestOperatorDatasets:
    def test_prefix2as_lookup(self, world):
        snapshot = Prefix2ASSnapshot.from_topology(world, seed=7,
                                                   miss_rate=0.0,
                                                   moas_rate=0.0)
        network_as = next(world.all_ases())
        prefix = network_as.prefixes[0]
        assert snapshot.origin(prefix) == (int(network_as.asn),)
        address = IPv4Address(prefix.network + 1)
        assert snapshot.lookup(address) == int(network_as.asn)

    def test_prefix2as_miss_rate(self, world):
        full = Prefix2ASSnapshot.from_topology(world, seed=7, miss_rate=0.0)
        lossy = Prefix2ASSnapshot.from_topology(world, seed=7,
                                                miss_rate=0.2)
        assert len(lossy) < len(full)

    def test_geolocation_mostly_correct(self, world):
        geo = GeoDatabase.from_topology(world, seed=7, error_rate=0.0)
        for network in world:
            prefix = network.ases[0].prefixes[0]
            assert geo.country_of_prefix(prefix) == network.country.iso2

    def test_geolocation_error_rate(self, world):
        geo = GeoDatabase.from_topology(world, seed=7, error_rate=0.5)
        wrong = 0
        total = 0
        for network in world:
            for network_as in network.ases:
                for prefix in network_as.prefixes:
                    total += 1
                    if geo.country_of_prefix(prefix) != network.country.iso2:
                        wrong += 1
        assert 0.35 < wrong / total < 0.65

    def test_eyeballs_coverage_floor(self, world):
        estimates = EyeballEstimates.from_topology(
            world, seed=7, coverage_floor=0.5)
        # Only dominant ASes are measured under an absurd floor.
        assert len(estimates) < sum(1 for _ in world.all_ases()) / 4

    def test_state_owned_list_recall(self, world):
        full = StateOwnedASList.from_topology(
            world, seed=7, recall=1.0, false_positive_rate=0.0)
        truth = {int(a.asn) for a in world.all_ases() if a.state_owned}
        assert set(full) == truth

    def test_state_shares_close_to_ground_truth(self, world):
        seed = 7
        shares = compute_state_shares(
            Prefix2ASSnapshot.from_topology(world, seed),
            GeoDatabase.from_topology(world, seed),
            StateOwnedASList.from_topology(world, seed),
            EyeballEstimates.from_topology(world, seed))
        truth = ground_truth_state_shares(world)
        errors = [
            abs(shares[iso2].address_space_fraction
                - truth[iso2].address_space_fraction)
            for iso2 in truth if iso2 in shares]
        assert np.mean(errors) < 0.08

    def test_state_controlled_flag(self, world):
        seed = 7
        shares = compute_state_shares(
            Prefix2ASSnapshot.from_topology(world, seed),
            GeoDatabase.from_topology(world, seed),
            StateOwnedASList.from_topology(world, seed),
            EyeballEstimates.from_topology(world, seed))
        for share in shares.values():
            assert share.state_controlled == \
                (share.address_space_fraction > 0.5)
