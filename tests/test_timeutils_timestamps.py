"""Tests for repro.timeutils.timestamps."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import TimeRangeError
from repro.timeutils.timestamps import (
    DAY,
    FIVE_MINUTES,
    HOUR,
    TEN_MINUTES,
    TimeRange,
    bin_ceil,
    bin_floor,
    bin_index,
    bin_range,
    format_utc,
    parse_utc,
    utc,
)


class TestUtcConstruction:
    def test_epoch(self):
        assert utc(1970, 1, 1) == 0

    def test_known_timestamp(self):
        assert utc(2018, 1, 1) == 1514764800

    def test_with_time_components(self):
        assert utc(2018, 1, 1, 5, 30, 15) == 1514764800 + 5 * HOUR + 1815

    def test_parse_date_only(self):
        assert parse_utc("2018-01-01") == utc(2018, 1, 1)

    def test_parse_datetime(self):
        assert parse_utc("2018-01-01 05:30:00") == utc(2018, 1, 1, 5, 30)

    def test_parse_minutes_only(self):
        assert parse_utc("2018-01-01 05:30") == utc(2018, 1, 1, 5, 30)

    def test_parse_iso_t_separator(self):
        assert parse_utc("2018-01-01T05:30") == utc(2018, 1, 1, 5, 30)

    def test_parse_rejects_garbage(self):
        with pytest.raises(TimeRangeError):
            parse_utc("not a date")

    def test_format_roundtrip(self):
        ts = utc(2022, 6, 30, 5, 30)
        assert format_utc(ts) == "2022-06-30 05:30:00"
        assert parse_utc(format_utc(ts)) == ts


class TestBinning:
    def test_floor_on_boundary(self):
        assert bin_floor(600, FIVE_MINUTES) == 600

    def test_floor_mid_bin(self):
        assert bin_floor(601, FIVE_MINUTES) == 600
        assert bin_floor(899, FIVE_MINUTES) == 600

    def test_ceil(self):
        assert bin_ceil(600, FIVE_MINUTES) == 600
        assert bin_ceil(601, FIVE_MINUTES) == 900

    def test_floor_rejects_bad_width(self):
        with pytest.raises(TimeRangeError):
            bin_floor(600, 0)

    def test_bin_index(self):
        assert bin_index(0, 0, TEN_MINUTES) == 0
        assert bin_index(1799, 0, TEN_MINUTES) == 2

    def test_bin_index_before_start(self):
        with pytest.raises(TimeRangeError):
            bin_index(-1, 0, TEN_MINUTES)

    def test_bin_range_covers_interval(self):
        bins = list(bin_range(0, 1500, FIVE_MINUTES))
        assert bins == [0, 300, 600, 900, 1200]

    def test_bin_range_empty_raises(self):
        with pytest.raises(TimeRangeError):
            list(bin_range(100, 100, FIVE_MINUTES))

    @given(st.integers(min_value=0, max_value=10**10),
           st.sampled_from([FIVE_MINUTES, TEN_MINUTES, HOUR, DAY]))
    def test_floor_idempotent_and_aligned(self, ts, width):
        floored = bin_floor(ts, width)
        assert floored % width == 0
        assert floored <= ts < floored + width
        assert bin_floor(floored, width) == floored


class TestTimeRange:
    def test_duration(self):
        assert TimeRange(0, 3600).duration == 3600

    def test_rejects_inverted(self):
        with pytest.raises(TimeRangeError):
            TimeRange(10, 5)

    def test_contains_half_open(self):
        span = TimeRange(100, 200)
        assert span.contains(100)
        assert span.contains(199)
        assert not span.contains(200)
        assert not span.contains(99)

    def test_overlaps(self):
        assert TimeRange(0, 10).overlaps(TimeRange(9, 20))
        assert not TimeRange(0, 10).overlaps(TimeRange(10, 20))

    def test_intersect(self):
        both = TimeRange(0, 10).intersect(TimeRange(5, 20))
        assert both == TimeRange(5, 10)
        assert TimeRange(0, 10).intersect(TimeRange(20, 30)) is None

    def test_expand(self):
        assert TimeRange(100, 200).expand(before=50, after=25) == \
            TimeRange(50, 225)

    def test_days_iterates_touched_days(self):
        span = TimeRange(utc(2018, 1, 1, 12), utc(2018, 1, 3, 1))
        days = list(span.days())
        assert days == [utc(2018, 1, 1), utc(2018, 1, 2), utc(2018, 1, 3)]

    @given(st.integers(min_value=0, max_value=10**9),
           st.integers(min_value=1, max_value=10**6),
           st.integers(min_value=0, max_value=10**9),
           st.integers(min_value=1, max_value=10**6))
    def test_overlap_symmetric_and_matches_intersect(self, s1, d1, s2, d2):
        a = TimeRange(s1, s1 + d1)
        b = TimeRange(s2, s2 + d2)
        assert a.overlaps(b) == b.overlaps(a)
        assert a.overlaps(b) == (a.intersect(b) is not None)
