"""Tests for yearly event trends."""

import pytest

from repro.analysis.trends import yearly_trends


class TestYearlyTrends:
    @pytest.fixture(scope="class")
    def trends(self, pipeline_result):
        return yearly_trends(pipeline_result.merged)

    def test_every_study_year_active(self, trends):
        assert set(trends.years()) == {2018, 2019, 2020, 2021}

    def test_totals_match_merged_dataset(self, trends, pipeline_result):
        merged = pipeline_result.merged
        assert sum(trends.shutdowns.values()) == \
            len(merged.ioda_shutdowns())
        assert sum(trends.outages.values()) == len(merged.ioda_outages())

    def test_country_counts_bounded_by_event_counts(self, trends):
        for year in trends.years():
            assert trends.shutdown_countries.get(year, 0) <= \
                trends.shutdowns.get(year, 0)
            assert trends.outage_countries.get(year, 0) <= \
                trends.outages.get(year, 0)

    def test_activity_spread_across_years(self, trends):
        """No single year dominates: the synthetic world spreads events
        like the paper's dataset does."""
        total = sum(trends.outages.values())
        for year in (2018, 2019, 2020):
            assert trends.outages[year] > 0.1 * total

    def test_rows_render(self, trends):
        rows = trends.rows()
        assert len(rows) == 1 + len(trends.years())
