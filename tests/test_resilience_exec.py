"""Integration tests for resilience in the executor and pipeline.

The two headline invariants of :mod:`repro.resilience`:

- **Recovery is invisible.**  A fault-injected run whose every fault is
  retriable within the policy budget produces byte-identical curated
  records to a fault-free run — on the serial, thread, and process
  backends alike.
- **Exhaustion is contained.**  A country whose source never recovers
  is quarantined: the merge proceeds with the survivors, the run
  reports ``degraded=True`` plus the quarantined codes, and the
  surviving records match a clean run's minus the quarantined country
  (modulo the sequential record ids).  Under ``fail_fast`` the same
  situation aborts the run instead.

Runs use the same deliberately small scenario as tests/test_exec.py so
each cold curation costs seconds.
"""

import json

import pytest

from repro import io
from repro.core.pipeline import ReproPipeline
from repro.errors import ResilienceError
from repro.exec import ExecutorConfig
from repro.resilience import FaultPlan, ResilienceConfig, RetryPolicy
from repro.timeutils.timestamps import TimeRange, utc
from repro.world.scenario import ScenarioConfig

SMALL_CONFIG = ScenarioConfig(seed=7, years=(2018,))
SMALL_PERIOD = TimeRange(utc(2018, 1, 1), utc(2018, 7, 1))

#: Backoff with no real sleeping, so chaos tests stay fast.
NO_WAIT = RetryPolicy(base_delay=0.0, max_delay=0.0, jitter=0.0)

#: Every fault recoverable within NO_WAIT's budget of 3 retries.
RECOVERABLE = ResilienceConfig(faults=FaultPlan(fail_first=2, seed=5),
                               retry=NO_WAIT)


def _run(resilience=None, *, backend="serial", workers=1, cache_dir=None):
    pipeline = ReproPipeline(
        scenario_config=SMALL_CONFIG, study_period=SMALL_PERIOD,
        cache_dir=cache_dir,
        executor=ExecutorConfig(workers=workers, backend=backend),
        resilience=resilience)
    result = pipeline.run()
    return pipeline, result


def _record_bytes(records, *, drop_ids=False):
    dicts = [io.record_to_dict(r) for r in records]
    if drop_ids:
        for d in dicts:
            d.pop("record_id", None)
    return json.dumps(dicts, sort_keys=True)


@pytest.fixture(scope="module")
def clean():
    """The fault-free baseline run."""
    pipeline, result = _run()
    assert not pipeline.stats.degraded
    return pipeline, result


class TestByteIdentityUnderRecoverableFaults:
    @pytest.mark.parametrize("backend,workers", [
        ("serial", 1), ("thread", 4), ("process", 2)])
    def test_recovered_run_is_byte_identical(self, clean, backend,
                                             workers):
        _, baseline = clean
        pipeline, result = _run(RECOVERABLE, backend=backend,
                                workers=workers)
        assert _record_bytes(result.curated_records) \
            == _record_bytes(baseline.curated_records)
        assert not pipeline.stats.degraded
        assert pipeline.stats.quarantined == ()

    def test_dataset_stage_recovers_identically(self, clean):
        # fail_first faults hit the dataset loaders too; a recovered
        # load must reproduce the exact products (retries re-derive the
        # source RNG substream instead of consuming it).
        _, baseline = clean
        _, result = _run(RECOVERABLE)
        assert result.vdem._records == baseline.vdem._records
        assert result.state_shares == baseline.state_shares
        assert result.merged.labeled == baseline.merged.labeled

    def test_faults_were_actually_injected(self):
        pipeline, _ = _run(RECOVERABLE)
        counters = pipeline.observability.metrics.snapshot()["counters"]
        injected = sum(v for k, v in counters.items()
                       if k.startswith("resilience.faults"))
        retried = sum(v for k, v in counters.items()
                      if k.startswith("resilience.retry.failures"))
        assert injected > 0
        assert retried > 0

    def test_chaos_run_bypasses_the_shard_cache(self, tmp_path, clean):
        _, baseline = clean
        # Chaos run first: must not plant shard payloads...
        _run(RECOVERABLE, cache_dir=tmp_path)
        assert not list(tmp_path.glob("curate-*.json"))
        # ...and a warm cache must not serve a chaos run.
        pipeline, _ = _run(cache_dir=tmp_path)
        assert pipeline.stats.cache_misses == pipeline.stats.n_shards
        chaos, result = _run(RECOVERABLE, cache_dir=tmp_path)
        assert chaos.stats.cache_hits == 0
        assert _record_bytes(result.curated_records) \
            == _record_bytes(baseline.curated_records)


class TestQuarantine:
    @pytest.fixture(scope="class")
    def degraded(self):
        config = ResilienceConfig(faults=FaultPlan(permanent=("SY",)),
                                  retry=NO_WAIT)
        return _run(config)

    def test_degraded_flag_and_quarantine_list(self, degraded):
        pipeline, _ = degraded
        assert pipeline.stats.degraded
        assert pipeline.stats.quarantined == ("SY",)
        report = pipeline.stats.as_dict()
        assert report["degraded"] is True
        assert report["quarantined"] == ["SY"]

    def test_merge_proceeds_with_survivors(self, degraded, clean):
        _, baseline = clean
        _, result = degraded
        assert result.curated_records
        assert all(r.country_iso2 != "SY"
                   for r in result.curated_records)
        # Survivors match the clean run minus SY, field for field; only
        # the sequential record ids shift.
        expected = [r for r in baseline.curated_records
                    if r.country_iso2 != "SY"]
        assert _record_bytes(result.curated_records, drop_ids=True) \
            == _record_bytes(expected, drop_ids=True)
        assert sorted(r.record_id for r in result.curated_records) \
            == list(range(1, len(expected) + 1))

    def test_quarantine_reaches_the_obs_journal(self, degraded):
        pipeline, _ = degraded
        counters = pipeline.observability.metrics.snapshot()["counters"]
        assert counters.get("resilience.quarantined{country=SY}") == 1
        assert any(k.startswith("resilience.breaker.opened")
                   for k in counters)
        curate = next(s for s in pipeline.observability.tracer.spans()
                      if s.name == "stage:curate")
        assert curate.attrs["degraded"] is True
        assert curate.attrs["quarantined"] == ["SY"]

    @pytest.mark.parametrize("backend,workers", [
        ("thread", 4), ("process", 2)])
    def test_quarantine_is_backend_independent(self, degraded, backend,
                                               workers):
        serial_pipeline, serial_result = degraded
        config = ResilienceConfig(faults=FaultPlan(permanent=("SY",)),
                                  retry=NO_WAIT)
        pipeline, result = _run(config, backend=backend, workers=workers)
        assert pipeline.stats.quarantined \
            == serial_pipeline.stats.quarantined
        assert _record_bytes(result.curated_records) \
            == _record_bytes(serial_result.curated_records)

    def test_fail_fast_aborts_instead(self):
        config = ResilienceConfig(faults=FaultPlan(permanent=("SY",)),
                                  retry=NO_WAIT, fail_fast=True)
        with pytest.raises(ResilienceError):
            _run(config)

    def test_degraded_shards_are_never_cached(self, tmp_path):
        # permanent= is an injected plan, so the cache is bypassed; the
        # guarantee under test is the stronger one — no degraded shard
        # payload ever lands on disk to poison a later clean run.
        config = ResilienceConfig(faults=FaultPlan(permanent=("SY",)),
                                  retry=NO_WAIT)
        _run(config, cache_dir=tmp_path)
        assert not list(tmp_path.glob("curate-*.json"))
        pipeline, result = _run(cache_dir=tmp_path)
        assert not pipeline.stats.degraded
        assert any(r.country_iso2 == "SY" for r in result.curated_records)
