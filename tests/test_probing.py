"""Tests for the active-probing substrate."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, SignalError
from repro.probing.blocks import ProbedBlock, sample_blocks
from repro.probing.scheduler import ActiveProbingRun
from repro.probing.trinocular import (
    BlockState,
    TrinocularConfig,
    TrinocularInference,
)
from repro.rng import substream
from repro.timeutils.timestamps import HOUR, TEN_MINUTES, TimeRange


class TestTrinocularScalar:
    def test_answer_proves_up(self):
        inference = TrinocularInference()
        assert inference.update(0.05, answered=True, unanswered_probes=0,
                                response_rate=0.5) == 1.0

    def test_misses_decay_belief(self):
        inference = TrinocularInference()
        belief = inference.initial_belief()
        for _ in range(6):
            belief = inference.update(belief, answered=False,
                                      unanswered_probes=12,
                                      response_rate=0.5)
        assert inference.classify(belief) is BlockState.DOWN

    def test_classification_thresholds(self):
        inference = TrinocularInference()
        assert inference.classify(0.95) is BlockState.UP
        assert inference.classify(0.5) is BlockState.UNKNOWN
        assert inference.classify(0.05) is BlockState.DOWN

    def test_config_validation(self):
        with pytest.raises(ConfigurationError):
            TrinocularConfig(up_threshold=0.1, down_threshold=0.9)
        with pytest.raises(ConfigurationError):
            TrinocularConfig(probes_per_round=0)


class TestTrinocularBatch:
    def test_batch_matches_scalar(self):
        inference = TrinocularInference()
        beliefs = np.array([0.92, 0.92, 0.5])
        answered = np.array([True, False, False])
        rates = np.array([0.4, 0.4, 0.7])
        batch = inference.batch_update(beliefs, answered, rates)
        for i in range(3):
            scalar = inference.update(
                float(beliefs[i]), answered=bool(answered[i]),
                unanswered_probes=inference.config.probes_per_round,
                response_rate=float(rates[i]))
            assert batch[i] == pytest.approx(scalar)

    def test_answer_probability_zero_when_down(self):
        inference = TrinocularInference()
        rates = np.array([0.5, 0.5])
        up = np.array([True, False])
        probs = inference.answer_probability(rates, up)
        assert probs[1] == 0.0
        assert probs[0] > 0.99  # 12 probes at 50% each


class TestProbedBlocks:
    def test_response_rate_validated(self):
        with pytest.raises(ConfigurationError):
            ProbedBlock(slash24=1, response_rate=0.0)

    def test_sample_blocks_excludes_mobile(self, scenario):
        network = scenario.topology.get("IR")
        rng = substream(1, "blocks")
        blocks = sample_blocks(network, rng, max_blocks=64)
        assert 0 < len(blocks) <= 64
        mobile_blocks = {
            block
            for network_as in network.ases if network_as.mobile
            for prefix in network_as.prefixes
            for block in prefix.slash24s()}
        assert all(b.slash24 not in mobile_blocks for b in blocks)

    def test_sample_deterministic(self, scenario):
        network = scenario.topology.get("SY")
        a = sample_blocks(network, substream(1, "x"), max_blocks=32)
        b = sample_blocks(network, substream(1, "x"), max_blocks=32)
        assert [x.slash24 for x in a] == [x.slash24 for x in b]


class TestActiveProbingRun:
    def _run(self, n_blocks=64):
        rng = substream(2, "blocks")
        blocks = [ProbedBlock(slash24=i,
                              response_rate=float(rng.uniform(0.2, 0.9)))
                  for i in range(n_blocks)]
        return ActiveProbingRun(blocks)

    def test_requires_blocks(self):
        with pytest.raises(SignalError):
            ActiveProbingRun([])

    def test_steady_state_counts_near_total(self):
        run = self._run()
        window = TimeRange(0, 12 * HOUR)
        n_rounds = 12 * HOUR // TEN_MINUTES
        series = run.up_count_series(window, np.ones(n_rounds),
                                     substream(3, "probe"))
        steady = series.values[6:]
        assert steady.mean() > 0.95 * run.n_blocks

    def test_total_outage_drops_to_zero(self):
        run = self._run()
        window = TimeRange(0, 12 * HOUR)
        n_rounds = 12 * HOUR // TEN_MINUTES
        up = np.ones(n_rounds)
        up[30:50] = 0.0
        series = run.up_count_series(window, up, substream(3, "probe"))
        # Beliefs need a couple of silent rounds to collapse.
        assert series.values[34:50].max() == 0

    def test_recovery_within_one_round(self):
        run = self._run()
        window = TimeRange(0, 12 * HOUR)
        n_rounds = 12 * HOUR // TEN_MINUTES
        up = np.ones(n_rounds)
        up[30:48] = 0.0
        series = run.up_count_series(window, up, substream(3, "probe"))
        assert series.values[48] > 0.9 * run.n_blocks

    def test_partial_outage_partial_drop(self):
        run = self._run()
        window = TimeRange(0, 12 * HOUR)
        n_rounds = 12 * HOUR // TEN_MINUTES
        up = np.ones(n_rounds)
        up[40:60] = 0.4
        series = run.up_count_series(window, up, substream(3, "probe"))
        mid = series.values[45:60].mean()
        assert 0.25 * run.n_blocks < mid < 0.55 * run.n_blocks

    def test_shape_validation(self):
        run = self._run(8)
        with pytest.raises(SignalError):
            run.up_count_series(TimeRange(0, HOUR), np.ones(3),
                                substream(1, "x"))
